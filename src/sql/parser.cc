#include "sql/parser.h"

#include <cctype>

#include "common/schema.h"

namespace hive {

Result<StatementPtr> Parser::Parse(const std::string& sql) {
  HIVE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  HIVE_ASSIGN_OR_RETURN(StatementPtr stmt, parser.ParseStatement());
  parser.Accept(";");
  if (parser.Peek().kind != TokenKind::kEof)
    return parser.ErrorHere("unexpected trailing input");
  return stmt;
}

Result<std::vector<StatementPtr>> Parser::ParseScript(const std::string& sql) {
  HIVE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  std::vector<StatementPtr> out;
  while (parser.Peek().kind != TokenKind::kEof) {
    if (parser.Accept(";")) continue;
    HIVE_ASSIGN_OR_RETURN(StatementPtr stmt, parser.ParseStatement());
    out.push_back(std::move(stmt));
  }
  return out;
}

const Token& Parser::Peek(int ahead) const {
  size_t i = pos_ + static_cast<size_t>(ahead);
  if (i >= tokens_.size()) i = tokens_.size() - 1;
  return tokens_[i];
}

const Token& Parser::Next() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Accept(const char* kw) {
  const Token& t = Peek();
  if ((t.kind == TokenKind::kKeyword && t.text == kw) ||
      (t.kind == TokenKind::kSymbol && t.text == kw)) {
    Next();
    return true;
  }
  return false;
}

Status Parser::Expect(const char* kw) {
  if (Accept(kw)) return Status::OK();
  return ErrorHere(std::string("expected '") + kw + "'");
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  return Status::ParseError(message + " at offset " + std::to_string(t.position) +
                            " (near '" + t.text + "')");
}

Status Parser::ParseQualifiedName(std::string* db, std::string* name) {
  if (Peek().kind != TokenKind::kIdentifier && Peek().kind != TokenKind::kKeyword)
    return ErrorHere("expected name");
  std::string first = Next().text;
  if (Accept(".")) {
    if (Peek().kind != TokenKind::kIdentifier && Peek().kind != TokenKind::kKeyword)
      return ErrorHere("expected name after '.'");
    *db = ToLower(first);
    *name = ToLower(Next().text);
  } else {
    db->clear();
    *name = ToLower(first);
  }
  return Status::OK();
}

Result<StatementPtr> Parser::ParseStatement() {
  const Token& t = Peek();
  if (t.IsKeyword("SELECT") || t.IsKeyword("WITH") || t.IsSymbol("(")) {
    auto stmt = std::make_shared<SelectStatement>();
    HIVE_ASSIGN_OR_RETURN(auto select, ParseSelectStmt());
    stmt->select = *select;
    return StatementPtr(stmt);
  }
  if (t.IsKeyword("INSERT")) return ParseInsert();
  if (t.IsKeyword("UPDATE")) return ParseUpdate();
  if (t.IsKeyword("DELETE")) return ParseDelete();
  if (t.IsKeyword("MERGE")) return ParseMerge();
  if (t.IsKeyword("CREATE")) return ParseCreate();
  if (t.IsKeyword("DROP")) return ParseDrop();
  if (t.IsKeyword("ALTER")) return ParseAlter();
  if (t.IsKeyword("ANALYZE")) return ParseAnalyze();
  if (t.IsKeyword("ADD")) {
    // ADD RULE <name> TO <pool>
    Next();
    HIVE_RETURN_IF_ERROR(Expect("RULE"));
    auto stmt = std::make_shared<ResourcePlanStatement>();
    stmt->op = ResourcePlanStatement::Op::kAddRuleToPool;
    stmt->rule_name = ToLower(Next().text);
    HIVE_RETURN_IF_ERROR(Expect("TO"));
    stmt->pool = ToLower(Next().text);
    return StatementPtr(stmt);
  }
  if (t.IsKeyword("PREPARE")) return ParsePrepare();
  if (t.IsKeyword("EXECUTE")) return ParseExecute();
  if (t.IsKeyword("DEALLOCATE")) return ParseDeallocate();
  if (t.IsKeyword("EXPLAIN")) {
    Next();
    auto stmt = std::make_shared<ExplainStatement>();
    // EXPLAIN ANALYZE <query>; "ANALYZE TABLE" after EXPLAIN still means
    // explaining the ANALYZE statement, not the execute-and-profile form.
    if (Peek().IsKeyword("ANALYZE") && !Peek(1).IsKeyword("TABLE")) {
      Next();
      stmt->analyze = true;
    }
    HIVE_ASSIGN_OR_RETURN(stmt->inner, ParseStatement());
    return StatementPtr(stmt);
  }
  if (t.IsKeyword("SHOW")) {
    Next();
    if (Accept("METRICS"))
      return StatementPtr(std::make_shared<ShowMetricsStatement>());
    HIVE_RETURN_IF_ERROR(Expect("TABLES"));
    return StatementPtr(std::make_shared<ShowTablesStatement>());
  }
  return ErrorHere("unsupported statement");
}

Result<std::shared_ptr<SelectStmt>> Parser::ParseSelectStmt() {
  auto stmt = std::make_shared<SelectStmt>();
  if (Accept("WITH")) {
    for (;;) {
      CteDef cte;
      cte.name = ToLower(Next().text);
      HIVE_RETURN_IF_ERROR(Expect("AS"));
      HIVE_RETURN_IF_ERROR(Expect("("));
      HIVE_ASSIGN_OR_RETURN(cte.query, ParseSelectStmt());
      HIVE_RETURN_IF_ERROR(Expect(")"));
      stmt->ctes.push_back(std::move(cte));
      if (!Accept(",")) break;
    }
  }
  HIVE_ASSIGN_OR_RETURN(stmt->body, ParseQueryExpr());
  if (Accept("ORDER")) {
    HIVE_RETURN_IF_ERROR(Expect("BY"));
    for (;;) {
      OrderItem item;
      HIVE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (Accept("DESC")) item.ascending = false;
      else Accept("ASC");
      stmt->order_by.push_back(std::move(item));
      if (!Accept(",")) break;
    }
  }
  if (Accept("LIMIT")) {
    if (Peek().kind != TokenKind::kIntLiteral) return ErrorHere("expected LIMIT count");
    stmt->limit = Next().int_value;
  }
  return stmt;
}

Result<std::shared_ptr<QueryExpr>> Parser::ParseQueryExpr() {
  HIVE_ASSIGN_OR_RETURN(std::shared_ptr<QueryExpr> left, ParseQueryTerm());
  for (;;) {
    SetOpKind op = SetOpKind::kNone;
    if (Accept("UNION")) {
      op = Accept("ALL") ? SetOpKind::kUnionAll : SetOpKind::kUnionDistinct;
    } else if (Accept("INTERSECT")) {
      op = SetOpKind::kIntersect;
    } else if (Accept("EXCEPT")) {
      op = SetOpKind::kExcept;
    } else {
      break;
    }
    auto node = std::make_shared<QueryExpr>();
    node->op = op;
    node->left = std::move(left);
    HIVE_ASSIGN_OR_RETURN(node->right, ParseQueryTerm());
    left = std::move(node);
  }
  return left;
}

Result<std::shared_ptr<QueryExpr>> Parser::ParseQueryTerm() {
  if (Peek().IsSymbol("(") &&
      (Peek(1).IsKeyword("SELECT") || Peek(1).IsKeyword("WITH") || Peek(1).IsSymbol("("))) {
    Next();  // consume '('
    HIVE_ASSIGN_OR_RETURN(auto inner, ParseQueryExpr());
    HIVE_RETURN_IF_ERROR(Expect(")"));
    return inner;
  }
  auto node = std::make_shared<QueryExpr>();
  node->op = SetOpKind::kNone;
  HIVE_ASSIGN_OR_RETURN(node->core, ParseSelectCore());
  return node;
}

Result<SelectCore> Parser::ParseSelectCore() {
  SelectCore core;
  HIVE_RETURN_IF_ERROR(Expect("SELECT"));
  if (Accept("DISTINCT")) core.distinct = true;
  else Accept("ALL");
  for (;;) {
    SelectItem item;
    HIVE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (Accept("AS")) {
      item.alias = ToLower(Next().text);
    } else if (Peek().kind == TokenKind::kIdentifier) {
      item.alias = ToLower(Next().text);
    }
    core.items.push_back(std::move(item));
    if (!Accept(",")) break;
  }
  if (Accept("FROM")) {
    HIVE_ASSIGN_OR_RETURN(core.from, ParseTableRef());
  }
  if (Accept("WHERE")) {
    HIVE_ASSIGN_OR_RETURN(core.where, ParseExpr());
  }
  if (Accept("GROUP")) {
    HIVE_RETURN_IF_ERROR(Expect("BY"));
    if (Accept("GROUPING")) {
      // GROUP BY GROUPING SETS ((a, b), (a), ())
      HIVE_RETURN_IF_ERROR(Expect("SETS"));
      HIVE_RETURN_IF_ERROR(Expect("("));
      std::vector<std::vector<ExprPtr>> sets;
      for (;;) {
        HIVE_RETURN_IF_ERROR(Expect("("));
        std::vector<ExprPtr> set;
        if (!Peek().IsSymbol(")")) {
          HIVE_ASSIGN_OR_RETURN(set, ParseExprList());
        }
        HIVE_RETURN_IF_ERROR(Expect(")"));
        sets.push_back(std::move(set));
        if (!Accept(",")) break;
      }
      HIVE_RETURN_IF_ERROR(Expect(")"));
      // Collect the distinct key expressions preserving first appearance.
      for (const auto& set : sets) {
        for (const ExprPtr& e : set) {
          bool found = false;
          for (const ExprPtr& k : core.group_by)
            if (k->ToString() == e->ToString()) found = true;
          if (!found) core.group_by.push_back(e);
        }
      }
      for (const auto& set : sets) {
        std::vector<size_t> idx;
        for (const ExprPtr& e : set)
          for (size_t k = 0; k < core.group_by.size(); ++k)
            if (core.group_by[k]->ToString() == e->ToString()) idx.push_back(k);
        core.grouping_sets.push_back(std::move(idx));
      }
    } else if (Accept("ROLLUP")) {
      HIVE_RETURN_IF_ERROR(Expect("("));
      HIVE_ASSIGN_OR_RETURN(core.group_by, ParseExprList());
      HIVE_RETURN_IF_ERROR(Expect(")"));
      // ROLLUP(a,b,c) => sets {a,b,c},{a,b},{a},{}
      for (size_t n = core.group_by.size() + 1; n-- > 0;) {
        std::vector<size_t> idx;
        for (size_t k = 0; k < n; ++k) idx.push_back(k);
        core.grouping_sets.push_back(std::move(idx));
      }
    } else if (Accept("CUBE")) {
      HIVE_RETURN_IF_ERROR(Expect("("));
      HIVE_ASSIGN_OR_RETURN(core.group_by, ParseExprList());
      HIVE_RETURN_IF_ERROR(Expect(")"));
      size_t n = core.group_by.size();
      for (size_t mask = 0; mask < (1u << n); ++mask) {
        std::vector<size_t> idx;
        for (size_t k = 0; k < n; ++k)
          if (mask & (1u << k)) idx.push_back(k);
        core.grouping_sets.push_back(std::move(idx));
      }
    } else {
      HIVE_ASSIGN_OR_RETURN(core.group_by, ParseExprList());
      if (Accept("GROUPING")) {
        HIVE_RETURN_IF_ERROR(Expect("SETS"));
        HIVE_RETURN_IF_ERROR(Expect("("));
        for (;;) {
          HIVE_RETURN_IF_ERROR(Expect("("));
          std::vector<size_t> idx;
          if (!Peek().IsSymbol(")")) {
            HIVE_ASSIGN_OR_RETURN(std::vector<ExprPtr> set, ParseExprList());
            for (const ExprPtr& e : set)
              for (size_t k = 0; k < core.group_by.size(); ++k)
                if (core.group_by[k]->ToString() == e->ToString()) idx.push_back(k);
          }
          HIVE_RETURN_IF_ERROR(Expect(")"));
          core.grouping_sets.push_back(std::move(idx));
          if (!Accept(",")) break;
        }
        HIVE_RETURN_IF_ERROR(Expect(")"));
      }
    }
  }
  if (Accept("HAVING")) {
    HIVE_ASSIGN_OR_RETURN(core.having, ParseExpr());
  }
  return core;
}

Result<TableRefPtr> Parser::ParseTableRef() {
  HIVE_ASSIGN_OR_RETURN(TableRefPtr left, ParseTablePrimary());
  for (;;) {
    TableRef::JoinType type;
    bool has_condition = true;
    if (Accept(",")) {
      type = TableRef::JoinType::kCross;
      has_condition = false;
    } else if (Accept("JOIN") || (Peek().IsKeyword("INNER") && Peek(1).IsKeyword("JOIN"))) {
      if (Peek().IsKeyword("JOIN")) Next();
      type = TableRef::JoinType::kInner;
    } else if (Accept("LEFT")) {
      Accept("OUTER");
      HIVE_RETURN_IF_ERROR(Expect("JOIN"));
      type = TableRef::JoinType::kLeft;
    } else if (Accept("RIGHT")) {
      Accept("OUTER");
      HIVE_RETURN_IF_ERROR(Expect("JOIN"));
      type = TableRef::JoinType::kRight;
    } else if (Accept("FULL")) {
      Accept("OUTER");
      HIVE_RETURN_IF_ERROR(Expect("JOIN"));
      type = TableRef::JoinType::kFull;
    } else if (Accept("CROSS")) {
      HIVE_RETURN_IF_ERROR(Expect("JOIN"));
      type = TableRef::JoinType::kCross;
      has_condition = false;
    } else {
      break;
    }
    auto join = std::make_shared<TableRef>();
    join->kind = TableRef::Kind::kJoin;
    join->join_type = type;
    join->left = std::move(left);
    HIVE_ASSIGN_OR_RETURN(join->right, ParseTablePrimary());
    if (has_condition && Accept("ON")) {
      HIVE_ASSIGN_OR_RETURN(join->condition, ParseExpr());
    }
    left = std::move(join);
  }
  return left;
}

Result<TableRefPtr> Parser::ParseTablePrimary() {
  auto ref = std::make_shared<TableRef>();
  if (Accept("(")) {
    ref->kind = TableRef::Kind::kSubquery;
    HIVE_ASSIGN_OR_RETURN(ref->subquery, ParseSelectStmt());
    HIVE_RETURN_IF_ERROR(Expect(")"));
    Accept("AS");
    if (Peek().kind == TokenKind::kIdentifier) ref->alias = ToLower(Next().text);
    else return ErrorHere("derived table requires an alias");
    return ref;
  }
  if (Peek().kind != TokenKind::kIdentifier) return ErrorHere("expected table name");
  ref->kind = TableRef::Kind::kTable;
  HIVE_RETURN_IF_ERROR(ParseQualifiedName(&ref->db, &ref->table));
  if (Accept("AS")) {
    ref->alias = ToLower(Next().text);
  } else if (Peek().kind == TokenKind::kIdentifier) {
    ref->alias = ToLower(Next().text);
  } else {
    ref->alias = ref->table;
  }
  return ref;
}

Result<std::vector<ExprPtr>> Parser::ParseExprList() {
  std::vector<ExprPtr> out;
  for (;;) {
    HIVE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    out.push_back(std::move(e));
    if (!Accept(",")) break;
  }
  return out;
}

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  HIVE_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (Accept("OR")) {
    HIVE_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  HIVE_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (Accept("AND")) {
    HIVE_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (Peek().IsKeyword("NOT") && !Peek(1).IsKeyword("EXISTS")) {
    Next();
    HIVE_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return MakeUnary(UnaryOp::kNot, std::move(operand));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  if (Peek().IsKeyword("EXISTS") ||
      (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("EXISTS"))) {
    bool negated = Accept("NOT");
    HIVE_RETURN_IF_ERROR(Expect("EXISTS"));
    HIVE_RETURN_IF_ERROR(Expect("("));
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kSubquery;
    e->subquery_kind = negated ? SubqueryKind::kNotExists : SubqueryKind::kExists;
    HIVE_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
    HIVE_RETURN_IF_ERROR(Expect(")"));
    return ExprPtr(e);
  }
  HIVE_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  for (;;) {
    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("BETWEEN") ||
         Peek(1).IsKeyword("LIKE"))) {
      Next();
      negated = true;
    }
    if (Accept("IS")) {
      bool is_not = Accept("NOT");
      HIVE_RETURN_IF_ERROR(Expect("NULL"));
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = is_not;
      e->children = {std::move(left)};
      left = e;
      continue;
    }
    if (Accept("IN")) {
      HIVE_RETURN_IF_ERROR(Expect("("));
      if (Peek().IsKeyword("SELECT") || Peek().IsKeyword("WITH")) {
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kSubquery;
        e->subquery_kind = negated ? SubqueryKind::kNotIn : SubqueryKind::kIn;
        e->children = {std::move(left)};
        HIVE_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
        HIVE_RETURN_IF_ERROR(Expect(")"));
        left = e;
      } else {
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kInList;
        e->negated = negated;
        e->children.push_back(std::move(left));
        HIVE_ASSIGN_OR_RETURN(std::vector<ExprPtr> values, ParseExprList());
        for (auto& v : values) e->children.push_back(std::move(v));
        HIVE_RETURN_IF_ERROR(Expect(")"));
        left = e;
      }
      continue;
    }
    if (Accept("BETWEEN")) {
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      HIVE_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      HIVE_RETURN_IF_ERROR(Expect("AND"));
      HIVE_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      e->children = {std::move(left), std::move(lo), std::move(hi)};
      left = e;
      continue;
    }
    if (Accept("LIKE")) {
      HIVE_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      ExprPtr like = MakeBinary(BinaryOp::kLike, std::move(left), std::move(pattern));
      left = negated ? MakeUnary(UnaryOp::kNot, std::move(like)) : std::move(like);
      continue;
    }
    BinaryOp op;
    if (Accept("=")) op = BinaryOp::kEq;
    else if (Accept("<>")) op = BinaryOp::kNe;
    else if (Accept("<=")) op = BinaryOp::kLe;
    else if (Accept(">=")) op = BinaryOp::kGe;
    else if (Accept("<")) op = BinaryOp::kLt;
    else if (Accept(">")) op = BinaryOp::kGt;
    else break;
    // Comparison against a scalar subquery: x > (SELECT ...)
    if (Peek().IsSymbol("(") && (Peek(1).IsKeyword("SELECT") || Peek(1).IsKeyword("WITH"))) {
      Next();
      auto sub = std::make_shared<Expr>();
      sub->kind = ExprKind::kSubquery;
      sub->subquery_kind = SubqueryKind::kScalar;
      HIVE_ASSIGN_OR_RETURN(sub->subquery, ParseSelectStmt());
      HIVE_RETURN_IF_ERROR(Expect(")"));
      left = MakeBinary(op, std::move(left), std::move(sub));
      continue;
    }
    HIVE_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAdditive() {
  HIVE_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  for (;;) {
    BinaryOp op;
    if (Accept("+")) op = BinaryOp::kAdd;
    else if (Accept("-")) op = BinaryOp::kSub;
    else if (Accept("||")) op = BinaryOp::kConcat;
    else break;
    HIVE_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  HIVE_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  for (;;) {
    BinaryOp op;
    if (Accept("*")) op = BinaryOp::kMul;
    else if (Accept("/")) op = BinaryOp::kDiv;
    else if (Accept("%")) op = BinaryOp::kMod;
    else break;
    HIVE_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Accept("-")) {
    HIVE_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    if (operand->kind == ExprKind::kLiteral && operand->literal.kind() == TypeKind::kBigint)
      return MakeLiteral(Value::Bigint(-operand->literal.i64()));
    if (operand->kind == ExprKind::kLiteral && operand->literal.kind() == TypeKind::kDouble)
      return MakeLiteral(Value::Double(-operand->literal.f64()));
    return MakeUnary(UnaryOp::kNegate, std::move(operand));
  }
  Accept("+");
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  if (t.IsSymbol("?")) {
    Next();
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kParam;
    e->param_index = ++params_seen_;
    return e;
  }
  if (t.kind == TokenKind::kIntLiteral) {
    Next();
    return MakeLiteral(Value::Bigint(t.int_value));
  }
  if (t.kind == TokenKind::kDoubleLiteral) {
    Next();
    return MakeLiteral(Value::Double(t.double_value));
  }
  if (t.kind == TokenKind::kStringLiteral) {
    Next();
    return MakeLiteral(Value::String(t.text));
  }
  if (Accept("NULL")) return MakeLiteral(Value::Null());
  if (Accept("TRUE")) return MakeLiteral(Value::Boolean(true));
  if (Accept("FALSE")) return MakeLiteral(Value::Boolean(false));
  if (Peek().IsKeyword("DATE") && Peek(1).kind == TokenKind::kStringLiteral) {
    Next();
    HIVE_ASSIGN_OR_RETURN(int64_t days, ParseDate(Next().text));
    return MakeLiteral(Value::Date(days));
  }
  if (Peek().IsKeyword("TIMESTAMP") && Peek(1).kind == TokenKind::kStringLiteral) {
    Next();
    HIVE_ASSIGN_OR_RETURN(int64_t us, ParseTimestamp(Next().text));
    return MakeLiteral(Value::Timestamp(us));
  }
  if (Accept("INTERVAL")) {
    // INTERVAL '3' DAY / INTERVAL 3 MONTH: a bigint with a unit function.
    int64_t amount;
    if (Peek().kind == TokenKind::kIntLiteral) {
      amount = Next().int_value;
    } else if (Peek().kind == TokenKind::kStringLiteral) {
      amount = std::strtoll(Next().text.c_str(), nullptr, 10);
    } else {
      return ErrorHere("expected INTERVAL amount");
    }
    std::string unit = Next().text;  // DAY / MONTH / YEAR keyword
    return MakeFunction("INTERVAL_" + unit, {MakeLiteral(Value::Bigint(amount))});
  }
  if (Accept("CASE")) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kCase;
    // Simple form: CASE x WHEN v THEN r ... => rewrite to searched form.
    ExprPtr operand;
    if (!Peek().IsKeyword("WHEN")) {
      HIVE_ASSIGN_OR_RETURN(operand, ParseExpr());
    }
    while (Accept("WHEN")) {
      HIVE_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
      if (operand) when = MakeBinary(BinaryOp::kEq, operand, std::move(when));
      HIVE_RETURN_IF_ERROR(Expect("THEN"));
      HIVE_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
      e->children.push_back(std::move(when));
      e->children.push_back(std::move(then));
    }
    if (Accept("ELSE")) {
      e->has_else = true;
      HIVE_ASSIGN_OR_RETURN(ExprPtr else_expr, ParseExpr());
      e->children.push_back(std::move(else_expr));
    }
    HIVE_RETURN_IF_ERROR(Expect("END"));
    return ExprPtr(e);
  }
  if (Accept("CAST")) {
    HIVE_RETURN_IF_ERROR(Expect("("));
    HIVE_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
    HIVE_RETURN_IF_ERROR(Expect("AS"));
    HIVE_ASSIGN_OR_RETURN(DataType type, ParseDataType());
    HIVE_RETURN_IF_ERROR(Expect(")"));
    return MakeCast(std::move(operand), type);
  }
  if (Accept("EXTRACT")) {
    HIVE_RETURN_IF_ERROR(Expect("("));
    std::string field = Next().text;  // YEAR / MONTH / ... keyword
    HIVE_RETURN_IF_ERROR(Expect("FROM"));
    HIVE_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
    HIVE_RETURN_IF_ERROR(Expect(")"));
    return MakeFunction("EXTRACT_" + field, {std::move(operand)});
  }
  if (Accept("(")) {
    HIVE_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    HIVE_RETURN_IF_ERROR(Expect(")"));
    return inner;
  }
  if (t.IsSymbol("*")) {
    Next();
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kStar;
    return ExprPtr(e);
  }
  // Scalar subquery in expression position.
  if (t.IsKeyword("SELECT")) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kSubquery;
    e->subquery_kind = SubqueryKind::kScalar;
    HIVE_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
    return ExprPtr(e);
  }
  if (t.kind == TokenKind::kIdentifier ||
      (t.kind == TokenKind::kKeyword &&
       (t.text == "YEAR" || t.text == "MONTH" || t.text == "DAY" ||
        t.text == "CURRENT" || t.text == "DATE"))) {
    std::string first = Next().text;
    if (Accept("(")) {
      // function call
      return ParseFunctionCall(first);
    }
    if (Accept(".")) {
      if (Peek().IsSymbol("*")) {
        Next();
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kStar;
        e->qualifier = ToLower(first);
        return ExprPtr(e);
      }
      std::string second = Next().text;
      return MakeColumnRef(ToLower(first), ToLower(second));
    }
    return MakeColumnRef("", ToLower(first));
  }
  return ErrorHere("expected expression");
}

Result<ExprPtr> Parser::ParseFunctionCall(std::string name) {
  for (char& c : name) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunction;
  e->func_name = name;
  if (Accept("DISTINCT")) e->distinct = true;
  if (!Peek().IsSymbol(")")) {
    if (Peek().IsSymbol("*")) {
      Next();  // COUNT(*)
      auto star = std::make_shared<Expr>();
      star->kind = ExprKind::kStar;
      e->children.push_back(std::move(star));
    } else {
      HIVE_ASSIGN_OR_RETURN(e->children, ParseExprList());
    }
  }
  HIVE_RETURN_IF_ERROR(Expect(")"));
  if (Accept("OVER")) {
    HIVE_RETURN_IF_ERROR(Expect("("));
    e->window = std::make_shared<WindowSpec>();
    if (Accept("PARTITION")) {
      HIVE_RETURN_IF_ERROR(Expect("BY"));
      HIVE_ASSIGN_OR_RETURN(e->window->partition_by, ParseExprList());
    }
    if (Accept("ORDER")) {
      HIVE_RETURN_IF_ERROR(Expect("BY"));
      for (;;) {
        HIVE_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
        bool asc = !Accept("DESC");
        if (asc) Accept("ASC");
        e->window->order_by.push_back({std::move(expr), asc});
        if (!Accept(",")) break;
      }
    }
    // Ignore explicit frame clauses (treated as the default frame).
    while (!Peek().IsSymbol(")") && Peek().kind != TokenKind::kEof) Next();
    HIVE_RETURN_IF_ERROR(Expect(")"));
  }
  return ExprPtr(e);
}

Result<DataType> Parser::ParseDataType() {
  const Token& t = Peek();
  if (t.IsKeyword("INT") || t.IsKeyword("INTEGER") || t.IsKeyword("BIGINT")) {
    Next();
    return DataType::Bigint();
  }
  if (t.IsKeyword("DOUBLE") || t.IsKeyword("FLOAT")) {
    Next();
    return DataType::Double();
  }
  if (t.IsKeyword("DECIMAL") || t.IsKeyword("NUMERIC")) {
    Next();
    int p = 10, s = 0;
    if (Accept("(")) {
      p = static_cast<int>(Next().int_value);
      if (Accept(",")) s = static_cast<int>(Next().int_value);
      HIVE_RETURN_IF_ERROR(Expect(")"));
    }
    return DataType::Decimal(p, s);
  }
  if (t.IsKeyword("STRING")) {
    Next();
    return DataType::String();
  }
  if (t.IsKeyword("VARCHAR") || t.IsKeyword("CHAR")) {
    Next();
    if (Accept("(")) {
      Next();  // length, ignored
      HIVE_RETURN_IF_ERROR(Expect(")"));
    }
    return DataType::String();
  }
  if (t.IsKeyword("BOOLEAN")) {
    Next();
    return DataType::Boolean();
  }
  if (t.IsKeyword("DATE")) {
    Next();
    return DataType::Date();
  }
  if (t.IsKeyword("TIMESTAMP")) {
    Next();
    return DataType::Timestamp();
  }
  return ErrorHere("expected data type");
}

Result<StatementPtr> Parser::ParseInsert() {
  HIVE_RETURN_IF_ERROR(Expect("INSERT"));
  HIVE_RETURN_IF_ERROR(Expect("INTO"));
  Accept("TABLE");
  auto stmt = std::make_shared<InsertStatement>();
  HIVE_RETURN_IF_ERROR(ParseQualifiedName(&stmt->db, &stmt->table));
  if (Peek().IsSymbol("(") && Peek(1).kind == TokenKind::kIdentifier &&
      (Peek(2).IsSymbol(",") || Peek(2).IsSymbol(")"))) {
    Next();
    for (;;) {
      stmt->columns.push_back(ToLower(Next().text));
      if (!Accept(",")) break;
    }
    HIVE_RETURN_IF_ERROR(Expect(")"));
  }
  if (Accept("VALUES")) {
    for (;;) {
      HIVE_RETURN_IF_ERROR(Expect("("));
      HIVE_ASSIGN_OR_RETURN(std::vector<ExprPtr> row, ParseExprList());
      HIVE_RETURN_IF_ERROR(Expect(")"));
      stmt->values_rows.push_back(std::move(row));
      if (!Accept(",")) break;
    }
  } else {
    HIVE_ASSIGN_OR_RETURN(stmt->source, ParseSelectStmt());
  }
  return StatementPtr(stmt);
}

Result<StatementPtr> Parser::ParseUpdate() {
  HIVE_RETURN_IF_ERROR(Expect("UPDATE"));
  auto stmt = std::make_shared<UpdateStatement>();
  HIVE_RETURN_IF_ERROR(ParseQualifiedName(&stmt->db, &stmt->table));
  HIVE_RETURN_IF_ERROR(Expect("SET"));
  for (;;) {
    std::string column = ToLower(Next().text);
    HIVE_RETURN_IF_ERROR(Expect("="));
    HIVE_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
    stmt->assignments.push_back({std::move(column), std::move(value)});
    if (!Accept(",")) break;
  }
  if (Accept("WHERE")) {
    HIVE_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StatementPtr(stmt);
}

Result<StatementPtr> Parser::ParseDelete() {
  HIVE_RETURN_IF_ERROR(Expect("DELETE"));
  HIVE_RETURN_IF_ERROR(Expect("FROM"));
  auto stmt = std::make_shared<DeleteStatement>();
  HIVE_RETURN_IF_ERROR(ParseQualifiedName(&stmt->db, &stmt->table));
  if (Accept("WHERE")) {
    HIVE_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StatementPtr(stmt);
}

Result<StatementPtr> Parser::ParseMerge() {
  HIVE_RETURN_IF_ERROR(Expect("MERGE"));
  HIVE_RETURN_IF_ERROR(Expect("INTO"));
  auto stmt = std::make_shared<MergeStatement>();
  HIVE_RETURN_IF_ERROR(ParseQualifiedName(&stmt->db, &stmt->table));
  if (Accept("AS")) stmt->target_alias = ToLower(Next().text);
  else if (Peek().kind == TokenKind::kIdentifier) stmt->target_alias = ToLower(Next().text);
  HIVE_RETURN_IF_ERROR(Expect("USING"));
  HIVE_ASSIGN_OR_RETURN(stmt->source, ParseTablePrimary());
  HIVE_RETURN_IF_ERROR(Expect("ON"));
  HIVE_ASSIGN_OR_RETURN(stmt->on, ParseExpr());
  while (Accept("WHEN")) {
    if (Accept("MATCHED")) {
      ExprPtr condition;
      if (Accept("AND")) {
        HIVE_ASSIGN_OR_RETURN(condition, ParseExpr());
      }
      HIVE_RETURN_IF_ERROR(Expect("THEN"));
      if (Accept("UPDATE")) {
        HIVE_RETURN_IF_ERROR(Expect("SET"));
        stmt->has_matched_update = true;
        stmt->matched_update_condition = condition;
        for (;;) {
          std::string column = ToLower(Next().text);
          HIVE_RETURN_IF_ERROR(Expect("="));
          HIVE_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
          stmt->matched_assignments.push_back({std::move(column), std::move(value)});
          if (!Accept(",")) break;
        }
      } else if (Accept("DELETE")) {
        stmt->has_matched_delete = true;
        stmt->matched_delete_condition = condition;
      } else {
        return ErrorHere("expected UPDATE or DELETE after WHEN MATCHED THEN");
      }
    } else if (Accept("NOT")) {
      HIVE_RETURN_IF_ERROR(Expect("MATCHED"));
      HIVE_RETURN_IF_ERROR(Expect("THEN"));
      HIVE_RETURN_IF_ERROR(Expect("INSERT"));
      HIVE_RETURN_IF_ERROR(Expect("VALUES"));
      HIVE_RETURN_IF_ERROR(Expect("("));
      stmt->has_not_matched_insert = true;
      HIVE_ASSIGN_OR_RETURN(stmt->insert_values, ParseExprList());
      HIVE_RETURN_IF_ERROR(Expect(")"));
    } else {
      return ErrorHere("expected MATCHED or NOT MATCHED");
    }
  }
  return StatementPtr(stmt);
}

Result<StatementPtr> Parser::ParseCreate() {
  HIVE_RETURN_IF_ERROR(Expect("CREATE"));
  if (Peek().IsKeyword("RESOURCE") || Peek().IsKeyword("POOL") ||
      Peek().IsKeyword("RULE") || Peek().IsKeyword("APPLICATION"))
    return ParseResourcePlanCreate();
  if (Accept("DATABASE")) {
    auto stmt = std::make_shared<CreateDatabaseStatement>();
    if (Accept("IF")) {
      HIVE_RETURN_IF_ERROR(Expect("NOT"));
      HIVE_RETURN_IF_ERROR(Expect("EXISTS"));
      stmt->if_not_exists = true;
    }
    stmt->name = ToLower(Next().text);
    return StatementPtr(stmt);
  }
  if (Accept("MATERIALIZED")) {
    HIVE_RETURN_IF_ERROR(Expect("VIEW"));
    return ParseCreateMaterializedView();
  }
  bool temporary = Accept("TEMPORARY");
  bool external = Accept("EXTERNAL");
  HIVE_RETURN_IF_ERROR(Expect("TABLE"));
  return ParseCreateTable(external, temporary);
}

Result<StatementPtr> Parser::ParseCreateTable(bool external, bool temporary) {
  auto stmt = std::make_shared<CreateTableStatement>();
  stmt->external = external;
  stmt->temporary = temporary;
  if (Accept("IF")) {
    HIVE_RETURN_IF_ERROR(Expect("NOT"));
    HIVE_RETURN_IF_ERROR(Expect("EXISTS"));
    stmt->if_not_exists = true;
  }
  HIVE_RETURN_IF_ERROR(ParseQualifiedName(&stmt->db, &stmt->table));
  if (Accept("(")) {
    for (;;) {
      if (Peek().IsKeyword("PRIMARY") || Peek().IsKeyword("FOREIGN") ||
          Peek().IsKeyword("UNIQUE") || Peek().IsKeyword("CONSTRAINT")) {
        CreateTableStatement::Constraint constraint;
        if (Accept("CONSTRAINT")) Next();  // constraint name, ignored
        if (Accept("PRIMARY")) {
          HIVE_RETURN_IF_ERROR(Expect("KEY"));
          constraint.kind = CreateTableStatement::Constraint::Kind::kPrimaryKey;
        } else if (Accept("FOREIGN")) {
          HIVE_RETURN_IF_ERROR(Expect("KEY"));
          constraint.kind = CreateTableStatement::Constraint::Kind::kForeignKey;
        } else if (Accept("UNIQUE")) {
          constraint.kind = CreateTableStatement::Constraint::Kind::kUnique;
        }
        HIVE_RETURN_IF_ERROR(Expect("("));
        for (;;) {
          constraint.columns.push_back(ToLower(Next().text));
          if (!Accept(",")) break;
        }
        HIVE_RETURN_IF_ERROR(Expect(")"));
        if (constraint.kind == CreateTableStatement::Constraint::Kind::kForeignKey) {
          HIVE_RETURN_IF_ERROR(Expect("REFERENCES"));
          std::string rdb;
          HIVE_RETURN_IF_ERROR(ParseQualifiedName(&rdb, &constraint.ref_table));
          if (!rdb.empty()) constraint.ref_table = rdb + "." + constraint.ref_table;
          HIVE_RETURN_IF_ERROR(Expect("("));
          for (;;) {
            constraint.ref_columns.push_back(ToLower(Next().text));
            if (!Accept(",")) break;
          }
          HIVE_RETURN_IF_ERROR(Expect(")"));
        }
        stmt->constraints.push_back(std::move(constraint));
      } else {
        ColumnDef col;
        col.name = ToLower(Next().text);
        HIVE_ASSIGN_OR_RETURN(col.type, ParseDataType());
        if (Accept("NOT")) {
          HIVE_RETURN_IF_ERROR(Expect("NULL"));
          CreateTableStatement::Constraint constraint;
          constraint.kind = CreateTableStatement::Constraint::Kind::kNotNull;
          constraint.columns = {col.name};
          stmt->constraints.push_back(std::move(constraint));
        }
        stmt->columns.push_back(std::move(col));
      }
      if (!Accept(",")) break;
    }
    HIVE_RETURN_IF_ERROR(Expect(")"));
  }
  if (Accept("PARTITIONED")) {
    HIVE_RETURN_IF_ERROR(Expect("BY"));
    HIVE_RETURN_IF_ERROR(Expect("("));
    for (;;) {
      ColumnDef col;
      col.name = ToLower(Next().text);
      HIVE_ASSIGN_OR_RETURN(col.type, ParseDataType());
      stmt->partition_columns.push_back(std::move(col));
      if (!Accept(",")) break;
    }
    HIVE_RETURN_IF_ERROR(Expect(")"));
  }
  if (Accept("STORED")) {
    HIVE_RETURN_IF_ERROR(Expect("BY"));
    if (Peek().kind != TokenKind::kStringLiteral)
      return ErrorHere("expected storage handler string");
    stmt->stored_by = Next().text;
  }
  if (Accept("TBLPROPERTIES")) {
    HIVE_RETURN_IF_ERROR(Expect("("));
    for (;;) {
      std::string key = Next().text;
      HIVE_RETURN_IF_ERROR(Expect("="));
      std::string value = Next().text;
      stmt->properties[key] = value;
      if (!Accept(",")) break;
    }
    HIVE_RETURN_IF_ERROR(Expect(")"));
  }
  if (Accept("AS")) {
    HIVE_ASSIGN_OR_RETURN(stmt->as_select, ParseSelectStmt());
  }
  return StatementPtr(stmt);
}

Result<StatementPtr> Parser::ParseCreateMaterializedView() {
  auto stmt = std::make_shared<CreateMaterializedViewStatement>();
  HIVE_RETURN_IF_ERROR(ParseQualifiedName(&stmt->db, &stmt->name));
  if (Accept("TBLPROPERTIES")) {
    HIVE_RETURN_IF_ERROR(Expect("("));
    for (;;) {
      std::string key = Next().text;
      HIVE_RETURN_IF_ERROR(Expect("="));
      std::string value = Next().text;
      stmt->properties[key] = value;
      if (!Accept(",")) break;
    }
    HIVE_RETURN_IF_ERROR(Expect(")"));
  }
  HIVE_RETURN_IF_ERROR(Expect("AS"));
  size_t sql_start = Peek().position;
  HIVE_ASSIGN_OR_RETURN(stmt->query, ParseSelectStmt());
  (void)sql_start;
  stmt->query_sql = stmt->query->ToString();
  return StatementPtr(stmt);
}

Result<StatementPtr> Parser::ParseDrop() {
  HIVE_RETURN_IF_ERROR(Expect("DROP"));
  auto stmt = std::make_shared<DropTableStatement>();
  if (Accept("MATERIALIZED")) {
    HIVE_RETURN_IF_ERROR(Expect("VIEW"));
    stmt->is_materialized_view = true;
  } else {
    HIVE_RETURN_IF_ERROR(Expect("TABLE"));
  }
  if (Accept("IF")) {
    HIVE_RETURN_IF_ERROR(Expect("EXISTS"));
    stmt->if_exists = true;
  }
  HIVE_RETURN_IF_ERROR(ParseQualifiedName(&stmt->db, &stmt->table));
  return StatementPtr(stmt);
}

Result<StatementPtr> Parser::ParseAlter() {
  HIVE_RETURN_IF_ERROR(Expect("ALTER"));
  if (Accept("MATERIALIZED")) {
    HIVE_RETURN_IF_ERROR(Expect("VIEW"));
    auto stmt = std::make_shared<AlterMaterializedViewRebuildStatement>();
    HIVE_RETURN_IF_ERROR(ParseQualifiedName(&stmt->db, &stmt->name));
    HIVE_RETURN_IF_ERROR(Expect("REBUILD"));
    return StatementPtr(stmt);
  }
  if (Accept("RESOURCE")) {
    HIVE_RETURN_IF_ERROR(Expect("PLAN"));
    auto stmt = std::make_shared<ResourcePlanStatement>();
    stmt->op = ResourcePlanStatement::Op::kEnableActivate;
    stmt->plan = ToLower(Next().text);
    HIVE_RETURN_IF_ERROR(Expect("ENABLE"));
    Accept("ACTIVATE");
    return StatementPtr(stmt);
  }
  if (Accept("PLAN")) {
    auto stmt = std::make_shared<ResourcePlanStatement>();
    stmt->op = ResourcePlanStatement::Op::kSetDefaultPool;
    stmt->plan = ToLower(Next().text);
    HIVE_RETURN_IF_ERROR(Expect("SET"));
    HIVE_RETURN_IF_ERROR(Expect("DEFAULT"));
    HIVE_RETURN_IF_ERROR(Expect("POOL"));
    HIVE_RETURN_IF_ERROR(Expect("="));
    stmt->pool = ToLower(Next().text);
    return StatementPtr(stmt);
  }
  return ErrorHere("unsupported ALTER statement");
}

Result<StatementPtr> Parser::ParseResourcePlanCreate() {
  auto stmt = std::make_shared<ResourcePlanStatement>();
  if (Accept("RESOURCE")) {
    HIVE_RETURN_IF_ERROR(Expect("PLAN"));
    stmt->op = ResourcePlanStatement::Op::kCreatePlan;
    stmt->plan = ToLower(Next().text);
    return StatementPtr(stmt);
  }
  if (Accept("POOL")) {
    stmt->op = ResourcePlanStatement::Op::kCreatePool;
    stmt->plan = ToLower(Next().text);
    HIVE_RETURN_IF_ERROR(Expect("."));
    stmt->pool = ToLower(Next().text);
    HIVE_RETURN_IF_ERROR(Expect("WITH"));
    for (;;) {
      std::string key = ToLower(Next().text);
      HIVE_RETURN_IF_ERROR(Expect("="));
      const Token& value = Next();
      if (key == "alloc_fraction") {
        stmt->alloc_fraction = value.kind == TokenKind::kDoubleLiteral
                                   ? value.double_value
                                   : static_cast<double>(value.int_value);
      } else if (key == "query_parallelism") {
        stmt->query_parallelism = static_cast<int>(value.int_value);
      }
      if (!Accept(",")) break;
    }
    return StatementPtr(stmt);
  }
  if (Accept("RULE")) {
    stmt->op = ResourcePlanStatement::Op::kCreateRule;
    stmt->rule_name = ToLower(Next().text);
    HIVE_RETURN_IF_ERROR(Expect("IN"));
    stmt->plan = ToLower(Next().text);
    HIVE_RETURN_IF_ERROR(Expect("WHEN"));
    // Metric names may be dotted registry counters ("llap.cache.misses")
    // in addition to the built-in "total_runtime"/"elapsed".
    stmt->rule_metric = ToLower(Next().text);
    while (Accept(".")) stmt->rule_metric += "." + ToLower(Next().text);
    HIVE_RETURN_IF_ERROR(Expect(">"));
    stmt->rule_threshold = Next().int_value;
    HIVE_RETURN_IF_ERROR(Expect("THEN"));
    if (Accept("MOVE")) {
      stmt->rule_action = "MOVE";
      stmt->rule_target_pool = ToLower(Next().text);
    } else if (Accept("KILL")) {
      stmt->rule_action = "KILL";
    }
    return StatementPtr(stmt);
  }
  if (Accept("APPLICATION")) {
    HIVE_RETURN_IF_ERROR(Expect("MAPPING"));
    stmt->op = ResourcePlanStatement::Op::kCreateMapping;
    stmt->mapping_application = ToLower(Next().text);
    HIVE_RETURN_IF_ERROR(Expect("IN"));
    stmt->plan = ToLower(Next().text);
    HIVE_RETURN_IF_ERROR(Expect("TO"));
    stmt->pool = ToLower(Next().text);
    return StatementPtr(stmt);
  }
  return ErrorHere("unsupported CREATE statement");
}

Result<StatementPtr> Parser::ParseAnalyze() {
  HIVE_RETURN_IF_ERROR(Expect("ANALYZE"));
  HIVE_RETURN_IF_ERROR(Expect("TABLE"));
  auto stmt = std::make_shared<AnalyzeTableStatement>();
  HIVE_RETURN_IF_ERROR(ParseQualifiedName(&stmt->db, &stmt->table));
  HIVE_RETURN_IF_ERROR(Expect("COMPUTE"));
  HIVE_RETURN_IF_ERROR(Expect("STATISTICS"));
  return StatementPtr(stmt);
}

Result<StatementPtr> Parser::ParsePrepare() {
  HIVE_RETURN_IF_ERROR(Expect("PREPARE"));
  auto stmt = std::make_shared<PrepareStatement>();
  if (Peek().kind != TokenKind::kIdentifier)
    return ErrorHere("expected prepared statement name");
  stmt->name = ToLower(Next().text);
  HIVE_RETURN_IF_ERROR(Expect("AS"));
  params_seen_ = 0;
  HIVE_ASSIGN_OR_RETURN(stmt->query, ParseSelectStmt());
  stmt->param_count = params_seen_;
  params_seen_ = 0;
  return StatementPtr(stmt);
}

Result<StatementPtr> Parser::ParseExecute() {
  HIVE_RETURN_IF_ERROR(Expect("EXECUTE"));
  auto stmt = std::make_shared<ExecuteStatement>();
  if (Peek().kind != TokenKind::kIdentifier)
    return ErrorHere("expected prepared statement name");
  stmt->name = ToLower(Next().text);
  if (Accept("(")) {
    if (!Accept(")")) {
      HIVE_ASSIGN_OR_RETURN(stmt->args, ParseExprList());
      HIVE_RETURN_IF_ERROR(Expect(")"));
    }
  }
  return StatementPtr(stmt);
}

Result<StatementPtr> Parser::ParseDeallocate() {
  HIVE_RETURN_IF_ERROR(Expect("DEALLOCATE"));
  Accept("PREPARE");  // optional PostgreSQL-style noise word
  auto stmt = std::make_shared<DeallocateStatement>();
  if (Peek().kind != TokenKind::kIdentifier)
    return ErrorHere("expected prepared statement name");
  stmt->name = ToLower(Next().text);
  return StatementPtr(stmt);
}

}  // namespace hive
