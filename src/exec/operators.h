#ifndef HIVE_EXEC_OPERATORS_H_
#define HIVE_EXEC_OPERATORS_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_hash_table.h"
#include "exec/operator.h"
#include "optimizer/rel.h"

namespace hive {

/// Table scan over native tables: resolves the snapshot, runs any dynamic
/// semijoin reducers (building min/max + Bloom sargs, or pruning partitions
/// dynamically), then reads batches through the chunk provider (the LLAP
/// cache when enabled). Partition-column values materialize as constant
/// vectors. Residual predicates produce selection vectors.
///
/// Open() enumerates the scan into morsels — one (location, file, row group)
/// unit each — which are the work-stealing granularity of the parallel
/// execution layer: serial Next() walks them in order, while a parallel
/// pipeline has workers claim indexes from a shared atomic counter and call
/// ReadMorsel concurrently (const state, thread-safe).
class ScanOperator : public Operator {
 public:
  ScanOperator(ExecContext* ctx, const RelNode& node);

  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  const Schema& schema() const override { return out_schema_; }

  uint64_t row_groups_skipped() const { return row_groups_skipped_.load(); }
  size_t partitions_scanned() const { return locations_.size(); }

  /// Number of morsels enumerated by Open().
  size_t num_morsels() const { return morsels_.size(); }
  /// Reads one morsel and applies residual filters / runtime Blooms. Sets
  /// *skipped (returning an empty batch) when the sarg eliminates the row
  /// group. Thread-safe after Open; does not touch rows_produced_.
  Result<RowBatch> ReadMorsel(size_t index, bool* skipped);
  /// ReadMorsel wrapped in the task-attempt policy: a transient failure
  /// (flaky read, chunk checksum mismatch) re-runs the read up to
  /// task.max.attempts times with backoff charged to the virtual clock;
  /// permanent errors fail fast. Thread-safe after Open.
  Result<RowBatch> ReadMorselWithRetry(size_t index, bool* skipped);
  /// Queues the morsel's column chunks on the I/O elevator so they decode
  /// into the cache ahead of a worker claiming the morsel. No-op when the
  /// context carries no prefetch hook or the morsel is out of range.
  void PrefetchMorsel(size_t index) const;

 private:
  struct Location {
    std::string path;
    std::vector<Value> partition_values;
  };
  /// Per-location open state shared (read-only) by concurrent ReadMorsel
  /// calls: the merge-on-read planner for ACID locations plus the opened
  /// file readers (footer metadata) that morsels index into.
  struct LocationState {
    std::unique_ptr<AcidReader> acid;  // null for non-ACID locations
    std::vector<std::shared_ptr<CofReader>> files;
  };
  struct Morsel {
    uint32_t location;
    uint32_t file;
    uint32_t row_group;
  };

  Status RunSemiJoinReducers();
  Status EnumerateMorsels();
  Result<RowBatch> PostProcess(RowBatch raw, const Location& loc) const;

  TableDesc table_;
  std::vector<size_t> projected_;       // into FullSchema
  std::vector<ExprPtr> filters_;        // over output schema
  std::vector<SemiJoinReducer> reducers_;
  std::vector<PartitionInfo> partitions_;
  bool partitions_pruned_ = false;
  Schema out_schema_;

  // Derived at Open (immutable afterwards):
  SearchArgument sarg_;
  std::vector<Location> locations_;
  std::vector<size_t> data_columns_;    // AcidReader projection (user ordinals)
  std::vector<int> output_from_data_;   // output i <- data column position or -1
  std::vector<int> output_from_part_;   // output i <- partition col index or -1
  std::vector<LocationState> location_states_;
  std::vector<Morsel> morsels_;
  /// Row-level Bloom filters from semijoin reducers: (output column, filter).
  std::vector<std::pair<int, std::shared_ptr<BloomFilter>>> runtime_blooms_;

  // Serial iteration cursor (unused by parallel pipelines).
  size_t next_morsel_ = 0;
  std::atomic<uint64_t> row_groups_skipped_{0};
};

/// Literal rows.
class ValuesOperator : public Operator {
 public:
  ValuesOperator(ExecContext* ctx, const RelNode& node);
  Status Open() override { return Status::OK(); }
  Result<RowBatch> Next(bool* done) override;
  const Schema& schema() const override { return schema_; }

 private:
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
  bool emitted_ = false;
};

class FilterOperator : public Operator {
 public:
  FilterOperator(ExecContext* ctx, OperatorPtr child, ExprPtr predicate);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

class ProjectOperator : public Operator {
 public:
  ProjectOperator(ExecContext* ctx, OperatorPtr child, std::vector<ExprPtr> exprs,
                  Schema schema);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
};

/// Shared core of the hash-join operators (the serial HashJoinOperator and
/// the morsel-parallel ParallelHashJoinOperator): equi-key extraction, the
/// materialized build side, the flat open-addressing join table — built
/// hash-partitioned across the LLAP executor pool — the perfect-hash array
/// for dense single-integer build domains, and batch-at-a-time probing.
///
/// Key columns evaluate vectorized (EvalVector) and hash column-wise
/// (HashKeyColumns); candidate verification compares evaluated key columns
/// directly, so the per-row boxed std::vector<Value> of the old path never
/// materializes. After Build(), ProbeBatch is safe to call concurrently:
/// the only shared writes are relaxed match-flag stores and metric shards.
class HashJoinCore {
 public:
  HashJoinCore(ExecContext* ctx, TableRef::JoinType join_type, ExprPtr condition,
               const Schema* out_schema);

  /// Plan-time perfect-hash eligibility: the condition reduces to exactly
  /// one equi-key conjunct whose two sides are the same non-decimal
  /// integer-backed kind. The runtime still requires a dense duplicate-free
  /// build domain before engaging (checked at build finalize).
  static bool PerfectHashEligible(const ExprPtr& condition, int left_width);

  /// Splits the condition into equi-key pairs and a residual given the
  /// probe (left) side's schema. Call once, before Build.
  Status BindCondition(const Schema& left_schema);

  /// Drains the (already open) build child and finalizes the hash table:
  /// vectorized key evaluation, column-wise hashing, then a partitioned
  /// parallel flat-table build (or the perfect-hash array when the hint is
  /// set and the key domain turns out dense and duplicate-free).
  Status Build(Operator* build_child);

  /// Joins one probe batch against the finalized table. Sets *emitted when
  /// the output batch is non-empty. Thread-safe after Build.
  Result<RowBatch> ProbeBatch(const RowBatch& batch, bool* emitted);

  /// FULL OUTER tail: null-extended build rows no probe row matched. Call
  /// after all ProbeBatch calls have completed.
  Result<RowBatch> EmitUnmatchedRight();

  size_t build_rows() const { return build_.num_rows(); }
  bool perfect_hash_engaged() const { return perfect_.engaged(); }
  /// Modeled probe CPU per row. A perfect-hash probe is one bounds check
  /// and an array load — half the modeled cost of the generic hash + chain
  /// walk. Callers charge this per probed row (serial: every batch;
  /// parallel: max over workers).
  int64_t probe_ns_per_row() const {
    const int64_t ns = ctx_->config->join_cpu_ns_per_row;
    return perfect_.engaged() ? (ns + 1) / 2 : ns;
  }
  void set_perfect_hash_hint(bool v) { perfect_hint_ = v; }
  /// EXPLAIN ANALYZE surface: build/probe table statistics append to this
  /// node's detail (AnnotateProfile, called by the owning operator's Close).
  void set_profile_node(obs::OperatorProfileNode* node) { profile_node_ = node; }
  void AnnotateProfile();

 private:
  enum class KeyCmp : uint8_t { kI64, kF64, kStr, kBoxed };

  /// Equality of one probe-row key against one build-row key, using the
  /// typed fast path the key kinds allow.
  bool KeysEqual(const std::vector<ColumnVectorPtr>& probe_cols, int32_t probe_row,
                 int32_t build_row) const;

  ExecContext* ctx_;
  TableRef::JoinType join_type_;
  ExprPtr condition_;
  const Schema* out_schema_;
  size_t left_width_ = 0;

  // Extracted equi-key expressions (left-side expr, right-side expr with
  // right-local bindings) and their typed comparison plan.
  std::vector<ExprPtr> left_keys_, right_keys_;
  std::vector<KeyCmp> key_cmp_;
  ExprPtr residual_;  // over concat(left, right)

  RowBatch build_;  // densely materialized right side
  std::vector<ColumnVectorPtr> build_key_cols_;  // evaluated over build_
  FlatJoinTable table_;
  PerfectHashTable perfect_;
  bool perfect_hint_ = false;
  /// Per-build-row matched flags (FULL OUTER bookkeeping). Atomic bytes:
  /// concurrent probe workers may flag the same build row; stores of 1 are
  /// idempotent and relaxed.
  std::unique_ptr<std::atomic<uint8_t>[]> matched_;

  // Probe statistics for EXPLAIN ANALYZE / metrics (relaxed accumulation).
  std::atomic<int64_t> probe_hits_{0};
  std::atomic<int64_t> probe_misses_{0};
  obs::Counter* metric_probe_hits_ = nullptr;
  obs::Counter* metric_probe_misses_ = nullptr;
  obs::OperatorProfileNode* profile_node_ = nullptr;
};

/// Hash join supporting inner/left/full/semi/anti (+cross). Right joins are
/// normalized to left joins by the compiler. Builds on the right input,
/// probes with the left; equi-keys are extracted from the condition and the
/// rest evaluates as a residual predicate per candidate pair. The probe
/// (left) child opens lazily — only after the build side finalized — so
/// build-side errors and deadline kills never touch the probe subtree.
class HashJoinOperator : public Operator {
 public:
  HashJoinOperator(ExecContext* ctx, OperatorPtr left, OperatorPtr right,
                   TableRef::JoinType join_type, ExprPtr condition, Schema schema);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

  HashJoinCore* core() { return &core_; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  Schema schema_;
  HashJoinCore core_;
  bool exhausted_left_ = false;
  bool emitted_unmatched_ = false;
  bool is_full_join_;
};

/// Mergeable grouped-aggregation state: the hash table of one aggregation
/// fragment. Every supported accumulator (COUNT / SUM / AVG-as-sum+count /
/// MIN / MAX / DISTINCT value sets) merges commutatively, so each parallel
/// worker folds its morsels into a private instance and the coordinator
/// merges them — the classic partial-aggregate exchange. Groups remember the
/// sequence number of the first input row that created them; emission sorts
/// by that, making output order deterministic and independent of how rows
/// were distributed over workers.
class GroupedAggState {
 public:
  GroupedAggState(const std::vector<ExprPtr>* keys, const std::vector<AggCall>* aggs);

  /// Folds one batch in. `seq_base` positions the batch in the global input
  /// order (a new group records seq_base + its row position).
  Status Consume(const RowBatch& batch, uint64_t seq_base);

  /// Merges `other`'s groups into this state.
  void Merge(GroupedAggState&& other);

  /// Finishes the build: adds the empty global group (no keys, no input)
  /// and orders groups by first-seen sequence. Call once, after all
  /// Consume/Merge.
  void Seal();

  size_t num_groups() const { return ordered_.size(); }
  /// Memory footprint for stage-boundary accounting: hash index + dense
  /// group array + per-group key bytes and accumulator payloads (including
  /// DISTINCT sets), tallied as groups grow and values accumulate.
  uint64_t approx_bytes() const;

  /// Emits groups [begin, end) as a batch over `schema` (keys then aggs).
  Result<RowBatch> Emit(size_t begin, size_t end, const Schema& schema) const;

 private:
  struct Accumulator {
    int64_t count = 0;
    bool any = false;
    int64_t sum_i64 = 0;
    double sum_f64 = 0;
    Value min, max;
    /// DISTINCT values, hashed on Value::Hash. Iteration order is
    /// nondeterministic, so order-sensitive finalizes (SUM over doubles)
    /// sort via Value::Compare first.
    std::unordered_set<Value, ValueHasher> distinct;
  };
  struct Group {
    std::vector<Value> keys;
    std::vector<Accumulator> accs;
    uint64_t first_seq = 0;
    uint64_t hash = 0;  // combined key hash (Merge re-indexes without reboxing)
  };

  /// Returns the dense ordinal of the group for `hash`/`keys`, creating it
  /// (consuming `keys`) when unseen. `seq` stamps a new group's first_seq.
  /// Merge-side path; Consume looks up against key columns directly.
  uint32_t FindOrCreate(uint64_t hash, std::vector<Value>&& keys, uint64_t seq,
                        bool* created);
  /// Appends a new group and indexes it; returns its ordinal.
  uint32_t CreateGroup(uint64_t hash, std::vector<Value>&& keys, uint64_t seq);
  /// Key equality of a stored group against one physical row of evaluated
  /// key columns (hash-chain verification without boxing the row).
  bool GroupMatchesRow(const Group& g, const std::vector<ColumnVectorPtr>& key_cols,
                       int32_t row) const;
  void MergeAccumulator(Accumulator* into, Accumulator&& from);
  Value Finalize(const AggCall& agg, const Accumulator& acc) const;
  /// Incremental footprint bookkeeping for one boxed value entering the
  /// state (group key or DISTINCT element).
  static uint64_t ValueBytes(const Value& v);
  /// Full payload footprint of one group (keys + accumulators + DISTINCT
  /// contents); used when Merge adopts a group wholesale.
  static uint64_t GroupPayloadBytes(const Group& g);

  const std::vector<ExprPtr>* keys_;
  const std::vector<AggCall>* aggs_;
  /// Dense group storage + flat open-addressing index over group-key hashes
  /// (payload = ordinal into groups_). Hash collisions chain in the index
  /// and resolve by key comparison.
  std::vector<Group> groups_;
  FlatHashIndex index_;
  std::vector<uint32_t> ordered_;  // Seal(): ordinals sorted by first_seq
  /// Running payload footprint (keys + distinct values) feeding approx_bytes.
  uint64_t payload_bytes_ = 0;
};

/// Hash aggregation with optional DISTINCT aggregates; grouping-set
/// expansion happens in the planner so this operator sees plain keys.
/// Thin serial driver over GroupedAggState.
class HashAggregateOperator : public Operator {
 public:
  HashAggregateOperator(ExecContext* ctx, OperatorPtr child,
                        std::vector<ExprPtr> keys, std::vector<AggCall> aggs,
                        Schema schema);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return schema_; }

 private:
  Status Consume();

  OperatorPtr child_;
  std::vector<ExprPtr> keys_;
  std::vector<AggCall> aggs_;
  Schema schema_;
  GroupedAggState state_;
  size_t emit_index_ = 0;
  bool consumed_ = false;
};

/// Full sort with optional fetch (ORDER BY ... LIMIT).
class SortOperator : public Operator {
 public:
  SortOperator(ExecContext* ctx, OperatorPtr child,
               std::vector<std::pair<ExprPtr, bool>> keys, int64_t fetch);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  Result<RowBatch> CollectAllIntoDense();

  OperatorPtr child_;
  std::vector<std::pair<ExprPtr, bool>> keys_;
  int64_t fetch_;
  bool sorted_ = false;
  RowBatch materialized_;
  size_t emit_offset_ = 0;
};

class LimitOperator : public Operator {
 public:
  LimitOperator(ExecContext* ctx, OperatorPtr child, int64_t limit);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  OperatorPtr child_;
  int64_t remaining_;
};

class UnionOperator : public Operator {
 public:
  UnionOperator(ExecContext* ctx, std::vector<OperatorPtr> children, Schema schema);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

 private:
  std::vector<OperatorPtr> children_;
  Schema schema_;
  size_t current_ = 0;
};

/// INTERSECT / EXCEPT with set (distinct) semantics via row-digest sets.
class SetOpOperator : public Operator {
 public:
  SetOpOperator(ExecContext* ctx, OperatorPtr left, OperatorPtr right,
                bool is_intersect);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  Status Close() override;
  const Schema& schema() const override { return left_->schema(); }

 private:
  OperatorPtr left_, right_;
  bool is_intersect_;
  bool done_ = false;
  RowBatch result_;
  bool emitted_ = false;
};

/// Window functions: materializes the input, then computes each call over
/// its partition/order spec, appending result columns.
class WindowOperator : public Operator {
 public:
  WindowOperator(ExecContext* ctx, OperatorPtr child,
                 std::vector<WindowCall> calls, Schema schema);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr child_;
  std::vector<WindowCall> calls_;
  Schema schema_;
  bool computed_ = false;
  RowBatch result_;
  bool emitted_ = false;
};

/// Shared-work spool (Section 4.5): the first consumer executes the shared
/// subtree and materializes its batches; subsequent consumers replay them.
struct SpoolState {
  Mutex mu{"exec.spool.mu"};
  bool materialized HIVE_GUARDED_BY(mu) = false;
  Status status HIVE_GUARDED_BY(mu);
  std::vector<RowBatch> batches HIVE_GUARDED_BY(mu);
  OperatorPtr source HIVE_GUARDED_BY(mu);
};

class SpoolOperator : public Operator {
 public:
  SpoolOperator(ExecContext* ctx, std::shared_ptr<SpoolState> state, Schema schema);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  const Schema& schema() const override { return schema_; }

 private:
  std::shared_ptr<SpoolState> state_;
  Schema schema_;
  size_t index_ = 0;
};

}  // namespace hive

#endif  // HIVE_EXEC_OPERATORS_H_
