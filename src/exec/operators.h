#ifndef HIVE_EXEC_OPERATORS_H_
#define HIVE_EXEC_OPERATORS_H_

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "optimizer/rel.h"

namespace hive {

/// Table scan over native tables: resolves the snapshot, runs any dynamic
/// semijoin reducers (building min/max + Bloom sargs, or pruning partitions
/// dynamically), then streams batches partition by partition through the
/// chunk provider (the LLAP cache when enabled). Partition-column values
/// materialize as constant vectors. Residual predicates produce selection
/// vectors.
class ScanOperator : public Operator {
 public:
  ScanOperator(ExecContext* ctx, const RelNode& node);

  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  const Schema& schema() const override { return out_schema_; }

  uint64_t row_groups_skipped() const { return row_groups_skipped_; }
  size_t partitions_scanned() const { return locations_.size(); }

 private:
  struct Location {
    std::string path;
    std::vector<Value> partition_values;
  };

  Status RunSemiJoinReducers();
  Status AdvanceLocation();
  Result<RowBatch> PostProcess(RowBatch raw, const Location& loc);

  TableDesc table_;
  std::vector<size_t> projected_;       // into FullSchema
  std::vector<ExprPtr> filters_;        // over output schema
  std::vector<SemiJoinReducer> reducers_;
  std::vector<PartitionInfo> partitions_;
  bool partitions_pruned_ = false;
  Schema out_schema_;

  // Derived at Open:
  SearchArgument sarg_;
  std::vector<Location> locations_;
  std::vector<size_t> data_columns_;    // AcidReader projection (user ordinals)
  std::vector<int> output_from_data_;   // output i <- data column position or -1
  std::vector<int> output_from_part_;   // output i <- partition col index or -1
  size_t location_index_ = 0;
  std::unique_ptr<AcidReader> reader_;
  // Non-ACID iteration state.
  std::vector<std::string> plain_files_;
  size_t plain_file_index_ = 0;
  std::shared_ptr<CofReader> plain_reader_;
  size_t plain_rg_ = 0;
  uint64_t row_groups_skipped_ = 0;
  /// Row-level Bloom filters from semijoin reducers: (output column, filter).
  std::vector<std::pair<int, std::shared_ptr<BloomFilter>>> runtime_blooms_;
};

/// Literal rows.
class ValuesOperator : public Operator {
 public:
  ValuesOperator(ExecContext* ctx, const RelNode& node);
  Status Open() override { return Status::OK(); }
  Result<RowBatch> Next(bool* done) override;
  const Schema& schema() const override { return schema_; }

 private:
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
  bool emitted_ = false;
};

class FilterOperator : public Operator {
 public:
  FilterOperator(ExecContext* ctx, OperatorPtr child, ExprPtr predicate);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

class ProjectOperator : public Operator {
 public:
  ProjectOperator(ExecContext* ctx, OperatorPtr child, std::vector<ExprPtr> exprs,
                  Schema schema);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
};

/// Hash join supporting inner/left/full/semi/anti (+cross). Right joins are
/// normalized to left joins by the compiler. Builds on the right input,
/// probes with the left; equi-keys are extracted from the condition and the
/// rest evaluates as a residual predicate per candidate pair.
class HashJoinOperator : public Operator {
 public:
  HashJoinOperator(ExecContext* ctx, OperatorPtr left, OperatorPtr right,
                   TableRef::JoinType join_type, ExprPtr condition, Schema schema);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

 private:
  Status BuildHashTable();
  Result<RowBatch> ProbeBatch(const RowBatch& batch, bool* emitted);
  Result<RowBatch> EmitUnmatchedRight();

  OperatorPtr left_;
  OperatorPtr right_;
  TableRef::JoinType join_type_;
  ExprPtr condition_;
  Schema schema_;

  // Extracted equi-key expressions (left-side expr, right-side expr with
  // right-local bindings).
  std::vector<ExprPtr> left_keys_, right_keys_;
  ExprPtr residual_;  // over concat(left, right)

  RowBatch build_;                 // densely materialized right side
  std::unordered_multimap<uint64_t, int32_t> table_;
  std::vector<uint8_t> right_matched_;
  bool built_ = false;
  bool exhausted_left_ = false;
  bool emitted_unmatched_ = false;
};

/// Hash aggregation with optional DISTINCT aggregates; grouping-set
/// expansion happens in the planner so this operator sees plain keys.
class HashAggregateOperator : public Operator {
 public:
  HashAggregateOperator(ExecContext* ctx, OperatorPtr child,
                        std::vector<ExprPtr> keys, std::vector<AggCall> aggs,
                        Schema schema);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return schema_; }

 private:
  struct Accumulator {
    int64_t count = 0;
    bool any = false;
    int64_t sum_i64 = 0;
    double sum_f64 = 0;
    Value min, max;
    std::set<Value> distinct;
  };
  struct Group {
    std::vector<Value> keys;
    std::vector<Accumulator> accs;
  };

  Status Consume();
  Value Finalize(const AggCall& agg, const Accumulator& acc) const;

  OperatorPtr child_;
  std::vector<ExprPtr> keys_;
  std::vector<AggCall> aggs_;
  Schema schema_;
  std::unordered_map<uint64_t, std::vector<Group>> groups_;
  std::vector<const Group*> ordered_;
  size_t emit_index_ = 0;
  bool consumed_ = false;
};

/// Full sort with optional fetch (ORDER BY ... LIMIT).
class SortOperator : public Operator {
 public:
  SortOperator(ExecContext* ctx, OperatorPtr child,
               std::vector<std::pair<ExprPtr, bool>> keys, int64_t fetch);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  Result<RowBatch> CollectAllIntoDense();

  OperatorPtr child_;
  std::vector<std::pair<ExprPtr, bool>> keys_;
  int64_t fetch_;
  bool sorted_ = false;
  RowBatch materialized_;
  size_t emit_offset_ = 0;
};

class LimitOperator : public Operator {
 public:
  LimitOperator(ExecContext* ctx, OperatorPtr child, int64_t limit);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  OperatorPtr child_;
  int64_t remaining_;
};

class UnionOperator : public Operator {
 public:
  UnionOperator(ExecContext* ctx, std::vector<OperatorPtr> children, Schema schema);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

 private:
  std::vector<OperatorPtr> children_;
  Schema schema_;
  size_t current_ = 0;
};

/// INTERSECT / EXCEPT with set (distinct) semantics via row-digest sets.
class SetOpOperator : public Operator {
 public:
  SetOpOperator(ExecContext* ctx, OperatorPtr left, OperatorPtr right,
                bool is_intersect);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  Status Close() override;
  const Schema& schema() const override { return left_->schema(); }

 private:
  OperatorPtr left_, right_;
  bool is_intersect_;
  bool done_ = false;
  RowBatch result_;
  bool emitted_ = false;
};

/// Window functions: materializes the input, then computes each call over
/// its partition/order spec, appending result columns.
class WindowOperator : public Operator {
 public:
  WindowOperator(ExecContext* ctx, OperatorPtr child,
                 std::vector<WindowCall> calls, Schema schema);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr child_;
  std::vector<WindowCall> calls_;
  Schema schema_;
  bool computed_ = false;
  RowBatch result_;
  bool emitted_ = false;
};

/// Shared-work spool (Section 4.5): the first consumer executes the shared
/// subtree and materializes its batches; subsequent consumers replay them.
struct SpoolState {
  std::mutex mu;
  bool materialized = false;
  Status status;
  std::vector<RowBatch> batches;
  OperatorPtr source;
};

class SpoolOperator : public Operator {
 public:
  SpoolOperator(ExecContext* ctx, std::shared_ptr<SpoolState> state, Schema schema);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  const Schema& schema() const override { return schema_; }

 private:
  std::shared_ptr<SpoolState> state_;
  Schema schema_;
  size_t index_ = 0;
};

}  // namespace hive

#endif  // HIVE_EXEC_OPERATORS_H_
