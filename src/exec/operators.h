#ifndef HIVE_EXEC_OPERATORS_H_
#define HIVE_EXEC_OPERATORS_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_hash_table.h"
#include "exec/operator.h"
#include "exec/spill.h"
#include "optimizer/rel.h"

namespace hive {

/// Table scan over native tables: resolves the snapshot, runs any dynamic
/// semijoin reducers (building min/max + Bloom sargs, or pruning partitions
/// dynamically), then reads batches through the chunk provider (the LLAP
/// cache when enabled). Partition-column values materialize as constant
/// vectors. Residual predicates produce selection vectors.
///
/// Open() enumerates the scan into morsels — one (location, file, row group)
/// unit each — which are the work-stealing granularity of the parallel
/// execution layer: serial Next() walks them in order, while a parallel
/// pipeline has workers claim indexes from a shared atomic counter and call
/// ReadMorsel concurrently (const state, thread-safe).
class ScanOperator : public Operator {
 public:
  ScanOperator(ExecContext* ctx, const RelNode& node);

  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  const Schema& schema() const override { return out_schema_; }

  uint64_t row_groups_skipped() const { return row_groups_skipped_.load(); }
  size_t partitions_scanned() const { return locations_.size(); }

  /// Number of morsels enumerated by Open().
  size_t num_morsels() const { return morsels_.size(); }
  /// Reads one morsel and applies residual filters / runtime Blooms. Sets
  /// *skipped (returning an empty batch) when the sarg eliminates the row
  /// group. Thread-safe after Open; does not touch rows_produced_.
  Result<RowBatch> ReadMorsel(size_t index, bool* skipped);
  /// ReadMorsel wrapped in the task-attempt policy: a transient failure
  /// (flaky read, chunk checksum mismatch) re-runs the read up to
  /// task.max.attempts times with backoff charged to the virtual clock;
  /// permanent errors fail fast. Thread-safe after Open.
  Result<RowBatch> ReadMorselWithRetry(size_t index, bool* skipped);
  /// Queues the morsel's column chunks on the I/O elevator so they decode
  /// into the cache ahead of a worker claiming the morsel. No-op when the
  /// context carries no prefetch hook or the morsel is out of range.
  void PrefetchMorsel(size_t index) const;

 private:
  struct Location {
    std::string path;
    std::vector<Value> partition_values;
  };
  /// Per-location open state shared (read-only) by concurrent ReadMorsel
  /// calls: the merge-on-read planner for ACID locations plus the opened
  /// file readers (footer metadata) that morsels index into.
  struct LocationState {
    std::unique_ptr<AcidReader> acid;  // null for non-ACID locations
    std::vector<std::shared_ptr<CofReader>> files;
  };
  struct Morsel {
    uint32_t location;
    uint32_t file;
    uint32_t row_group;
  };

  Status RunSemiJoinReducers();
  Status EnumerateMorsels();
  Result<RowBatch> PostProcess(RowBatch raw, const Location& loc) const;

  TableDesc table_;
  std::vector<size_t> projected_;       // into FullSchema
  std::vector<ExprPtr> filters_;        // over output schema
  std::vector<SemiJoinReducer> reducers_;
  std::vector<PartitionInfo> partitions_;
  bool partitions_pruned_ = false;
  Schema out_schema_;

  // Derived at Open (immutable afterwards):
  SearchArgument sarg_;
  std::vector<Location> locations_;
  std::vector<size_t> data_columns_;    // AcidReader projection (user ordinals)
  std::vector<int> output_from_data_;   // output i <- data column position or -1
  std::vector<int> output_from_part_;   // output i <- partition col index or -1
  std::vector<LocationState> location_states_;
  std::vector<Morsel> morsels_;
  /// Row-level Bloom filters from semijoin reducers: (output column, filter).
  std::vector<std::pair<int, std::shared_ptr<BloomFilter>>> runtime_blooms_;

  // Serial iteration cursor (unused by parallel pipelines).
  size_t next_morsel_ = 0;
  std::atomic<uint64_t> row_groups_skipped_{0};
};

/// Literal rows.
class ValuesOperator : public Operator {
 public:
  ValuesOperator(ExecContext* ctx, const RelNode& node);
  Status Open() override { return Status::OK(); }
  Result<RowBatch> Next(bool* done) override;
  const Schema& schema() const override { return schema_; }

 private:
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
  bool emitted_ = false;
};

class FilterOperator : public Operator {
 public:
  FilterOperator(ExecContext* ctx, OperatorPtr child, ExprPtr predicate);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

class ProjectOperator : public Operator {
 public:
  ProjectOperator(ExecContext* ctx, OperatorPtr child, std::vector<ExprPtr> exprs,
                  Schema schema);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
};

/// Shared core of the hash-join operators (the serial HashJoinOperator and
/// the morsel-parallel ParallelHashJoinOperator): equi-key extraction, the
/// materialized build side, the flat open-addressing join table — built
/// hash-partitioned across the LLAP executor pool — the perfect-hash array
/// for dense single-integer build domains, and batch-at-a-time probing.
///
/// Key columns evaluate vectorized (EvalVector) and hash column-wise
/// (HashKeyColumns); candidate verification compares evaluated key columns
/// directly, so the per-row boxed std::vector<Value> of the old path never
/// materializes. After Build(), ProbeBatch is safe to call concurrently:
/// the only shared writes are relaxed match-flag stores and metric shards.
class HashJoinCore {
 public:
  HashJoinCore(ExecContext* ctx, TableRef::JoinType join_type, ExprPtr condition,
               const Schema* out_schema);
  ~HashJoinCore();

  /// Plan-time perfect-hash eligibility: the condition reduces to exactly
  /// one equi-key conjunct whose two sides are the same non-decimal
  /// integer-backed kind. The runtime still requires a dense duplicate-free
  /// build domain before engaging (checked at build finalize).
  static bool PerfectHashEligible(const ExprPtr& condition, int left_width);

  /// Splits the condition into equi-key pairs and a residual given the
  /// probe (left) side's schema. Call once, before Build.
  Status BindCondition(const Schema& left_schema);

  /// Drains the (already open) build child and finalizes the hash table:
  /// vectorized key evaluation, column-wise hashing, then a partitioned
  /// parallel flat-table build (or the perfect-hash array when the hint is
  /// set and the key domain turns out dense and duplicate-free).
  Status Build(Operator* build_child);

  /// Joins one probe batch against the finalized table. Sets *emitted when
  /// the output batch is non-empty. Thread-safe after Build. `in_seqs`
  /// (grace pair joins only) positions each *physical* probe row in the
  /// global probe order; when set, `out_seqs` receives the probe sequence of
  /// every emitted output row so partition outputs can merge back into exact
  /// serial order.
  Result<RowBatch> ProbeBatch(const RowBatch& batch, bool* emitted,
                              const std::vector<uint64_t>* in_seqs = nullptr,
                              std::vector<uint64_t>* out_seqs = nullptr);

  /// FULL OUTER tail: null-extended build rows no probe row matched. Call
  /// after all ProbeBatch calls have completed.
  Result<RowBatch> EmitUnmatchedRight();

  /// True once Build's memory reservation was denied and the join switched
  /// to grace mode: build rows live in hash-partitioned spill files instead
  /// of build_. The owner then routes probe batches through
  /// GraceAddProbeBatch *in input order*, calls GraceFinishProbe once the
  /// probe side is drained, and streams GraceNextOutput — whose output is
  /// byte-identical to the in-memory probe path.
  bool grace_active() const { return grace_ != nullptr; }
  Status GraceAddProbeBatch(const RowBatch& batch);
  /// Joins every (build, probe) partition pair — recursively repartitioning
  /// pairs that still exceed the budget — and arms the sequence-merge over
  /// the pair outputs. Call once, after the last GraceAddProbeBatch.
  Status GraceFinishProbe();
  /// Streams the merged join output (FULL OUTER unmatched-build tail last).
  Result<RowBatch> GraceNextOutput(bool* done);

  size_t build_rows() const { return build_.num_rows(); }
  bool perfect_hash_engaged() const { return perfect_.engaged(); }
  /// Modeled probe CPU per row. A perfect-hash probe is one bounds check
  /// and an array load — half the modeled cost of the generic hash + chain
  /// walk. Callers charge this per probed row (serial: every batch;
  /// parallel: max over workers).
  int64_t probe_ns_per_row() const {
    const int64_t ns = ctx_->config->join_cpu_ns_per_row;
    return perfect_.engaged() ? (ns + 1) / 2 : ns;
  }
  void set_perfect_hash_hint(bool v) { perfect_hint_ = v; }
  /// EXPLAIN ANALYZE surface: build/probe table statistics append to this
  /// node's detail (AnnotateProfile, called by the owning operator's Close).
  void set_profile_node(obs::OperatorProfileNode* node) { profile_node_ = node; }
  void AnnotateProfile();

 private:
  enum class KeyCmp : uint8_t { kI64, kF64, kStr, kBoxed };
  struct GraceState;

  /// Equality of one probe-row key against one build-row key, using the
  /// typed fast path the key kinds allow.
  bool KeysEqual(const std::vector<ColumnVectorPtr>& probe_cols, int32_t probe_row,
                 int32_t build_row) const;

  /// Switches an over-budget build into grace mode: spills the rows already
  /// accumulated in build_ to depth-0 hash partitions and resets build_.
  Status EnterGrace();
  /// Routes the selected rows of one build-side batch to the depth-0 build
  /// partition writers, assigning global build sequence numbers.
  Status GraceRouteBuildBatch(const RowBatch& batch);
  /// Rebuilds table_/build_key_cols_/matched_ over the rows currently in
  /// build_ (serial, no perfect hash): the per-pair table of a grace join.
  Status RebuildTableOverBuild();
  /// Joins one (build, probe) partition pair, recursing on pairs whose
  /// build side still exceeds the budget. Appends output/tail spill runs.
  Status JoinPartitionPair(int depth, SpillBatchWriter* build_run,
                           SpillBatchWriter* probe_run);

  ExecContext* ctx_;
  TableRef::JoinType join_type_;
  ExprPtr condition_;
  const Schema* out_schema_;
  size_t left_width_ = 0;

  // Extracted equi-key expressions (left-side expr, right-side expr with
  // right-local bindings) and their typed comparison plan.
  std::vector<ExprPtr> left_keys_, right_keys_;
  std::vector<KeyCmp> key_cmp_;
  ExprPtr residual_;  // over concat(left, right)

  RowBatch build_;  // densely materialized right side
  std::vector<ColumnVectorPtr> build_key_cols_;  // evaluated over build_
  FlatJoinTable table_;
  PerfectHashTable perfect_;
  bool perfect_hint_ = false;
  /// Per-build-row matched flags (FULL OUTER bookkeeping). Atomic bytes:
  /// concurrent probe workers may flag the same build row; stores of 1 are
  /// idempotent and relaxed.
  std::unique_ptr<std::atomic<uint8_t>[]> matched_;

  // Probe statistics for EXPLAIN ANALYZE / metrics (relaxed accumulation).
  std::atomic<int64_t> probe_hits_{0};
  std::atomic<int64_t> probe_misses_{0};
  obs::Counter* metric_probe_hits_ = nullptr;
  obs::Counter* metric_probe_misses_ = nullptr;
  obs::OperatorProfileNode* profile_node_ = nullptr;

  /// Build-side memory reservation (held while build_/table_ are resident).
  MemoryReservation reservation_;
  /// Grace-mode state (partition writers, pair-output runs, merge cursors);
  /// null while the build fits in memory.
  std::unique_ptr<GraceState> grace_;
  /// Global build index of each row currently in build_ (grace pair joins;
  /// FULL OUTER tails merge by it). Empty in the in-memory path.
  std::vector<uint64_t> grace_build_seqs_;
};

/// Hash join supporting inner/left/full/semi/anti (+cross). Right joins are
/// normalized to left joins by the compiler. Builds on the right input,
/// probes with the left; equi-keys are extracted from the condition and the
/// rest evaluates as a residual predicate per candidate pair. The probe
/// (left) child opens lazily — only after the build side finalized — so
/// build-side errors and deadline kills never touch the probe subtree.
class HashJoinOperator : public Operator {
 public:
  HashJoinOperator(ExecContext* ctx, OperatorPtr left, OperatorPtr right,
                   TableRef::JoinType join_type, ExprPtr condition, Schema schema);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

  HashJoinCore* core() { return &core_; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  Schema schema_;
  HashJoinCore core_;
  bool exhausted_left_ = false;
  bool emitted_unmatched_ = false;
  bool is_full_join_;
};

/// Mergeable grouped-aggregation state: the hash table of one aggregation
/// fragment. Every supported accumulator (COUNT / SUM / AVG-as-sum+count /
/// MIN / MAX / DISTINCT value sets) merges commutatively, so each parallel
/// worker folds its morsels into a private instance and the coordinator
/// merges them — the classic partial-aggregate exchange. Groups remember the
/// sequence number of the first input row that created them; emission sorts
/// by that, making output order deterministic and independent of how rows
/// were distributed over workers.
class GroupedAggState {
 public:
  GroupedAggState(const std::vector<ExprPtr>* keys, const std::vector<AggCall>* aggs);

  /// Folds one batch in. `seq_base` positions the batch in the global input
  /// order (a new group records seq_base + its row position).
  Status Consume(const RowBatch& batch, uint64_t seq_base);

  /// Merges `other`'s groups into this state.
  void Merge(GroupedAggState&& other);

  /// Finishes the build: adds the empty global group (no keys, no input)
  /// and orders groups by first-seen sequence. Call once, after all
  /// Consume/Merge.
  void Seal();

  size_t num_groups() const { return ordered_.size(); }
  /// Memory footprint for stage-boundary accounting: hash index + dense
  /// group array + per-group key bytes and accumulator payloads (including
  /// DISTINCT sets), tallied as groups grow and values accumulate.
  uint64_t approx_bytes() const;

  /// Emits groups [begin, end) as a batch over `schema` (keys then aggs).
  Result<RowBatch> Emit(size_t begin, size_t end, const Schema& schema) const;

  // --- spill surface (AggSpillSet) ---
  /// Stored-group count, valid before Seal (spill flushes walk raw groups).
  size_t num_raw_groups() const { return groups_.size(); }
  uint64_t group_hash(size_t i) const { return groups_[i].hash; }
  /// First-seen sequence of the i-th *sealed* group (merge-emit ordering).
  uint64_t ordered_first_seq(size_t i) const {
    return groups_[ordered_[i]].first_seq;
  }
  /// Serializes raw group `i` — hash, first_seq, keys, accumulators
  /// (DISTINCT sets sorted for determinism) — as one spill record.
  std::string SerializeGroup(size_t i) const;
  /// Merges one serialized group record into this state (same semantics as
  /// Merge: new groups are adopted, existing ones fold accumulators and
  /// keep the minimum first_seq).
  Status AbsorbSerializedGroup(const std::string& record);
  /// Drops all groups and the index (after a spill flush).
  void Reset();

 private:
  struct Accumulator {
    int64_t count = 0;
    bool any = false;
    int64_t sum_i64 = 0;
    double sum_f64 = 0;
    Value min, max;
    /// DISTINCT values, hashed on Value::Hash. Iteration order is
    /// nondeterministic, so order-sensitive finalizes (SUM over doubles)
    /// sort via Value::Compare first.
    std::unordered_set<Value, ValueHasher> distinct;
  };
  struct Group {
    std::vector<Value> keys;
    std::vector<Accumulator> accs;
    uint64_t first_seq = 0;
    uint64_t hash = 0;  // combined key hash (Merge re-indexes without reboxing)
  };

  /// Returns the dense ordinal of the group for `hash`/`keys`, creating it
  /// (consuming `keys`) when unseen. `seq` stamps a new group's first_seq.
  /// Merge-side path; Consume looks up against key columns directly.
  uint32_t FindOrCreate(uint64_t hash, std::vector<Value>&& keys, uint64_t seq,
                        bool* created);
  /// Appends a new group and indexes it; returns its ordinal.
  uint32_t CreateGroup(uint64_t hash, std::vector<Value>&& keys, uint64_t seq);
  /// Key equality of a stored group against one physical row of evaluated
  /// key columns (hash-chain verification without boxing the row).
  bool GroupMatchesRow(const Group& g, const std::vector<ColumnVectorPtr>& key_cols,
                       int32_t row) const;
  void MergeAccumulator(Accumulator* into, Accumulator&& from);
  Value Finalize(const AggCall& agg, const Accumulator& acc) const;
  /// Incremental footprint bookkeeping for one boxed value entering the
  /// state (group key or DISTINCT element).
  static uint64_t ValueBytes(const Value& v);
  /// Full payload footprint of one group (keys + accumulators + DISTINCT
  /// contents); used when Merge adopts a group wholesale.
  static uint64_t GroupPayloadBytes(const Group& g);

  const std::vector<ExprPtr>* keys_;
  const std::vector<AggCall>* aggs_;
  /// Dense group storage + flat open-addressing index over group-key hashes
  /// (payload = ordinal into groups_). Hash collisions chain in the index
  /// and resolve by key comparison.
  std::vector<Group> groups_;
  FlatHashIndex index_;
  std::vector<uint32_t> ordered_;  // Seal(): ordinals sorted by first_seq
  /// Running payload footprint (keys + distinct values) feeding approx_bytes.
  uint64_t payload_bytes_ = 0;
};

/// Aggregation spill: hash-prefix partition streams that over-budget
/// fragments flush serialized group records into, plus the partition-wise
/// rebuild that reassembles the sealed result as a first-seen-ordered row
/// stream. One instance per aggregation node; each fragment (worker) flushes
/// into its own stream set, so concurrent flushes never contend. A group's
/// records always land in one hash partition, so rebuilding partitions one
/// at a time bounds the merge-side footprint to ~1/partitions of the state.
class AggSpillSet {
 public:
  AggSpillSet(ExecContext* ctx, std::string prefix,
              const std::vector<ExprPtr>* keys, const std::vector<AggCall>* aggs,
              int partitions, int workers);

  /// Serializes every group of `state` into worker `w`'s partition streams
  /// and resets the state. Thread-safe across distinct workers.
  Status Flush(int worker, GroupedAggState* state);
  /// True once any fragment flushed.
  bool spilled() const { return spilled_.load(std::memory_order_relaxed); }

  /// Rebuilds each hash partition — absorbing `remainder`'s groups of that
  /// partition plus every worker's spilled records in fixed (remainder,
  /// worker, chunk) order — seals it, finalizes it into a seq-tagged row
  /// run, then arms the k-way merge over the runs. Call once, after input
  /// ends. `remainder` (may be null) is the final unspilled in-memory state.
  Status PrepareEmit(GroupedAggState* remainder, const Schema& schema);
  /// Streams the merged output in first-seen group order.
  Result<RowBatch> NextOutput(bool* done);

  int64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }
  uint64_t bytes_spilled() const;

 private:
  struct Cursor {
    std::unique_ptr<SpillBatchReader> reader;
    RowBatch batch;
    std::vector<uint64_t> seqs;
    size_t pos = 0;
    bool done = false;
  };
  Status RefillCursor(Cursor* c);

  ExecContext* ctx_;
  std::string prefix_;
  const std::vector<ExprPtr>* keys_;
  const std::vector<AggCall>* aggs_;
  int partitions_;
  /// Partition record streams, [worker][partition]; created lazily.
  std::vector<std::vector<std::unique_ptr<SpillChunkWriter>>> writers_;
  std::atomic<bool> spilled_{false};
  std::atomic<int64_t> flushes_{0};
  std::vector<std::unique_ptr<SpillBatchWriter>> runs_;  // per-partition rows
  std::vector<Cursor> cursors_;
  Schema out_schema_;
};

/// Hash aggregation with optional DISTINCT aggregates; grouping-set
/// expansion happens in the planner so this operator sees plain keys.
/// Thin serial driver over GroupedAggState; a denied memory reservation
/// flushes the state through AggSpillSet and merge-emits on Seal.
class HashAggregateOperator : public Operator {
 public:
  HashAggregateOperator(ExecContext* ctx, OperatorPtr child,
                        std::vector<ExprPtr> keys, std::vector<AggCall> aggs,
                        Schema schema);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

  void set_profile_node(obs::OperatorProfileNode* node) { profile_node_ = node; }

 private:
  Status Consume();

  OperatorPtr child_;
  std::vector<ExprPtr> keys_;
  std::vector<AggCall> aggs_;
  Schema schema_;
  GroupedAggState state_;
  size_t emit_index_ = 0;
  bool consumed_ = false;
  MemoryReservation reservation_;
  std::unique_ptr<AggSpillSet> spill_;  // created on first denied reservation
  obs::OperatorProfileNode* profile_node_ = nullptr;
};

/// Full sort with optional fetch (ORDER BY ... LIMIT). Three regimes:
///  - small fetch: a bounded top-K heap holds only the K best rows, so
///    ORDER BY ... LIMIT never materializes (or spills) the input;
///  - input within budget: dense materialize + stable sort (the classic
///    path);
///  - over budget: external merge sort — each chunk that fills the
///    reservation sorts in memory and drains to a spill run, and emission
///    k-way-merges the runs (ties break toward the earlier run, which is
///    exactly std::stable_sort order).
class SortOperator : public Operator {
 public:
  SortOperator(ExecContext* ctx, OperatorPtr child,
               std::vector<std::pair<ExprPtr, bool>> keys, int64_t fetch);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override;
  const Schema& schema() const override { return child_->schema(); }

  void set_profile_node(obs::OperatorProfileNode* node) { profile_node_ = node; }

 private:
  struct MergeCursor {
    std::unique_ptr<SpillBatchReader> reader;
    RowBatch batch;
    std::vector<ColumnVectorPtr> keys;  // evaluated over `batch`
    size_t pos = 0;
    bool done = false;
  };

  /// Drains the child: top-K heap, in-memory sort into materialized_, or
  /// spill runs + armed merge, depending on fetch and the reservation.
  Status ConsumeInput();
  /// Bounded ORDER BY ... LIMIT consumption (fetch small enough for a heap).
  Status ConsumeTopK();
  /// Sorts the pending chunk and drains it to a new spill run.
  Status SpillRun(RowBatch* pending);
  Result<RowBatch> MergeNext(bool* done);
  Status RefillCursor(MergeCursor* c);

  OperatorPtr child_;
  std::vector<std::pair<ExprPtr, bool>> keys_;
  int64_t fetch_;
  bool sorted_ = false;
  RowBatch materialized_;
  size_t emit_offset_ = 0;
  MemoryReservation reservation_;
  std::vector<std::unique_ptr<SpillBatchWriter>> runs_;
  std::vector<MergeCursor> cursors_;
  bool merge_armed_ = false;
  int64_t merge_emitted_ = 0;  // rows emitted by the external merge
  bool used_top_k_ = false;
  uint64_t input_bytes_ = 0;
  obs::OperatorProfileNode* profile_node_ = nullptr;
};

class LimitOperator : public Operator {
 public:
  LimitOperator(ExecContext* ctx, OperatorPtr child, int64_t limit);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  OperatorPtr child_;
  int64_t remaining_;
};

class UnionOperator : public Operator {
 public:
  UnionOperator(ExecContext* ctx, std::vector<OperatorPtr> children, Schema schema);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

 private:
  std::vector<OperatorPtr> children_;
  Schema schema_;
  size_t current_ = 0;
};

/// INTERSECT / EXCEPT with set (distinct) semantics via row-digest sets.
/// The digest sets and the materialized result draw a reservation at batch
/// granularity (their *actual* byte footprint, not a fabricated estimate);
/// this operator does not spill, so a denied reservation fails the query
/// with a budget-exceeded status.
class SetOpOperator : public Operator {
 public:
  SetOpOperator(ExecContext* ctx, OperatorPtr left, OperatorPtr right,
                bool is_intersect);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  Status Close() override;
  const Schema& schema() const override { return left_->schema(); }

 private:
  OperatorPtr left_, right_;
  bool is_intersect_;
  bool done_ = false;
  RowBatch result_;
  bool emitted_ = false;
  MemoryReservation reservation_;
};

/// Window functions: materializes the input, then computes each call over
/// its partition/order spec, appending result columns.
class WindowOperator : public Operator {
 public:
  WindowOperator(ExecContext* ctx, OperatorPtr child,
                 std::vector<WindowCall> calls, Schema schema);
  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr child_;
  std::vector<WindowCall> calls_;
  Schema schema_;
  bool computed_ = false;
  RowBatch result_;
  bool emitted_ = false;
};

/// Shared-work spool (Section 4.5): the first consumer executes the shared
/// subtree and materializes its batches; subsequent consumers replay them.
struct SpoolState {
  Mutex mu{"exec.spool.mu"};
  bool materialized HIVE_GUARDED_BY(mu) = false;
  Status status HIVE_GUARDED_BY(mu);
  std::vector<RowBatch> batches HIVE_GUARDED_BY(mu);
  OperatorPtr source HIVE_GUARDED_BY(mu);
};

class SpoolOperator : public Operator {
 public:
  SpoolOperator(ExecContext* ctx, std::shared_ptr<SpoolState> state, Schema schema);
  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  const Schema& schema() const override { return schema_; }

 private:
  std::shared_ptr<SpoolState> state_;
  Schema schema_;
  size_t index_ = 0;
};

}  // namespace hive

#endif  // HIVE_EXEC_OPERATORS_H_
