#ifndef HIVE_EXEC_COMPILER_H_
#define HIVE_EXEC_COMPILER_H_

#include "exec/operators.h"
#include "optimizer/rel.h"

namespace hive {

/// Compiles an optimized logical plan into a physical operator tree (the
/// task-compiler analogue of Section 2). Responsibilities:
///   * operator selection (hash join/aggregate, sorts, spools),
///   * RIGHT-join normalization into LEFT joins with an output permutation,
///   * shared-work optimization (Section 4.5): equal subtrees (by digest)
///     compile once into a spool that replays materialized batches,
///   * wiring semijoin-reducer subplans through ExecContext::compile_subplan,
///   * dispatching storage-handler scans to the federation factory.
///
/// Also installs `ctx->compile_subplan` so runtime components (semijoin
/// reducers) can compile build-side plans on demand.
Result<OperatorPtr> CompilePlan(ExecContext* ctx, const RelNodePtr& plan);

}  // namespace hive

#endif  // HIVE_EXEC_COMPILER_H_
