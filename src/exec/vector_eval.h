#ifndef HIVE_EXEC_VECTOR_EVAL_H_
#define HIVE_EXEC_VECTOR_EVAL_H_

#include "common/column_vector.h"
#include "common/ast.h"

namespace hive {

/// Vectorized expression interpreter: evaluates a bound expression over all
/// *physical* rows of a batch (selection vectors are applied by the caller).
/// Column references alias the input vectors; arithmetic and comparisons on
/// integer/double columns run as tight loops over the raw buffers; complex
/// expressions (CASE, functions) fall back to a row-wise loop over the same
/// batch. This mirrors the vectorized operator model of [39] that LLAP
/// executes directly on its RLE data (Section 5.1).
Result<ColumnVectorPtr> EvalVector(const Expr& e, const RowBatch& batch);

/// Evaluates a boolean predicate and intersects it with the batch's current
/// selection, returning the surviving physical row indexes.
Result<std::vector<int32_t>> FilterSelection(const Expr& predicate,
                                             const RowBatch& batch);

/// Column-wise key hashing for the join/aggregation hot path: hashes every
/// *physical* row of the evaluated key columns in one pass per column,
/// replacing the per-row boxed std::vector<Value> + Value::Hash() loop. The
/// output is bit-identical to folding Value::Hash() of each key into
/// HashCombine seeded with 0x9e3779b97f4a7c15 (the HashKeys discipline), so
/// flat tables built from either path agree.
///
/// `all_valid` (optional) gets 1 for rows where every key column is
/// non-null — equi-join keys with any NULL never match and are skipped by
/// the build/probe, while GROUP BY keeps NULL groups and ignores it.
void HashKeyColumns(const std::vector<ColumnVectorPtr>& key_cols, size_t num_rows,
                    std::vector<uint64_t>* hashes, std::vector<uint8_t>* all_valid);

}  // namespace hive

#endif  // HIVE_EXEC_VECTOR_EVAL_H_
