#ifndef HIVE_EXEC_VECTOR_EVAL_H_
#define HIVE_EXEC_VECTOR_EVAL_H_

#include "common/column_vector.h"
#include "sql/ast.h"

namespace hive {

/// Vectorized expression interpreter: evaluates a bound expression over all
/// *physical* rows of a batch (selection vectors are applied by the caller).
/// Column references alias the input vectors; arithmetic and comparisons on
/// integer/double columns run as tight loops over the raw buffers; complex
/// expressions (CASE, functions) fall back to a row-wise loop over the same
/// batch. This mirrors the vectorized operator model of [39] that LLAP
/// executes directly on its RLE data (Section 5.1).
Result<ColumnVectorPtr> EvalVector(const Expr& e, const RowBatch& batch);

/// Evaluates a boolean predicate and intersects it with the batch's current
/// selection, returning the surviving physical row indexes.
Result<std::vector<int32_t>> FilterSelection(const Expr& predicate,
                                             const RowBatch& batch);

}  // namespace hive

#endif  // HIVE_EXEC_VECTOR_EVAL_H_
