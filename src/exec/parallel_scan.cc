#include "exec/parallel_scan.h"

#include <algorithm>
#include <future>

#include "exec/vector_eval.h"
#include "obs/metric_names.h"

namespace hive {

MorselDriver::MorselDriver(ExecContext* ctx, ParallelPipelineSpec spec)
    : ctx_(ctx), spec_(std::move(spec)) {
  scan_ = std::make_unique<ScanOperator>(ctx_, *spec_.scan);
}

Status MorselDriver::Open() {
  scan_digest_ = spec_.scan->Digest();
  for (const RelNodePtr& stage : spec_.stages)
    stage_digests_.push_back(stage->kind == RelKind::kFilter ? stage->Digest()
                                                             : std::string());
  return scan_->Open();
}

int MorselDriver::DecideWorkers() const {
  int workers = std::max(1, ctx_->max_parallel_workers);
  size_t morsels = scan_->num_morsels();
  if (morsels < static_cast<size_t>(workers))
    workers = std::max<int>(1, static_cast<int>(morsels));
  return workers;
}

Status MorselDriver::WorkerLoop(
    int worker, const std::function<Status(int, size_t, RowBatch&&)>& sink) {
  int64_t scan_rows = 0;
  int64_t busy_ns = 0;
  std::vector<int64_t> stage_rows(spec_.stages.size(), 0);
  Status status = Status::OK();
  for (;;) {
    if (failed_.load(std::memory_order_acquire)) break;
    // Morsel boundaries are the interruption points of the parallel
    // pipeline: deadline evaluation + workload-manager kill flag.
    Status interrupted = ctx_->CheckInterrupted();
    if (!interrupted.ok()) {
      status = interrupted;
      break;
    }
    size_t m = next_morsel_.fetch_add(1, std::memory_order_relaxed);
    if (m >= scan_->num_morsels()) break;
    if (morsels_claimed_) morsels_claimed_->Inc();
    // Queue wait: how long this morsel sat in the queue before any worker
    // picked it up — the dispatch latency of the morsel scheduler.
    if (morsel_queue_wait_us_)
      morsel_queue_wait_us_->Record(SimClock::WallMicros() - run_start_wall_us_);
    // I/O elevator read-ahead: decode the morsel one wave ahead while this
    // one is processed (duplicates collapse via cache single-flight).
    scan_->PrefetchMorsel(m + static_cast<size_t>(workers_));
    bool skipped = false;
    int64_t injected_us = 0;
    Result<RowBatch> read = Status::OK();
    {
      // Mirror virtual-clock charges made during this attempt (injected
      // fault latency, modeled I/O) so the task's cost is attributable.
      SimClock::TaskScope task_scope(&injected_us);
      read = scan_->ReadMorselWithRetry(m, &skipped);
    }
    if (!read.ok()) {
      status = read.status();
      break;
    }
    if (skipped) {
      if (morsels_skipped_) morsels_skipped_->Inc();
      continue;
    }
    RowBatch batch = std::move(*read);
    int64_t cpu_us = static_cast<int64_t>(batch.num_rows()) *
                     ctx_->config->scan_cpu_ns_per_row / 1000;
    int64_t kept_cost_us = 0;
    Result<RowBatch> chosen =
        MaybeSpeculate(m, std::move(batch), cpu_us, injected_us, &kept_cost_us);
    if (!chosen.ok()) {
      status = chosen.status();
      break;
    }
    if (morsel_cost_us_) morsel_cost_us_->Record(kept_cost_us);
    batch = std::move(*chosen);
    busy_ns += static_cast<int64_t>(batch.num_rows()) *
               ctx_->config->scan_cpu_ns_per_row;
    scan_rows += static_cast<int64_t>(batch.SelectedSize());
    // Apply the stacked stages (mirrors FilterOperator / ProjectOperator).
    bool eliminated = false;
    for (size_t s = 0; s < spec_.stages.size() && !eliminated; ++s) {
      const RelNodePtr& stage = spec_.stages[s];
      if (stage->kind == RelKind::kFilter) {
        Result<std::vector<int32_t>> selection =
            FilterSelection(*stage->predicate, batch);
        if (!selection.ok()) {
          status = selection.status();
          break;
        }
        stage_rows[s] += static_cast<int64_t>(selection->size());
        if (selection->empty()) {
          eliminated = true;
          break;
        }
        batch.SetSelection(std::move(*selection));
      } else {
        RowBatch out(stage->schema);
        for (size_t e = 0; e < stage->exprs.size(); ++e) {
          Result<ColumnVectorPtr> col = EvalVector(*stage->exprs[e], batch);
          if (!col.ok()) {
            status = col.status();
            break;
          }
          out.SetColumn(e, std::move(*col));
        }
        if (!status.ok()) break;
        out.set_num_rows(batch.num_rows());
        if (batch.has_selection()) out.SetSelection(batch.selection());
        batch = std::move(out);
      }
    }
    if (!status.ok()) break;
    if (eliminated) continue;
    Status sunk = sink(worker, m, std::move(batch));
    if (!sunk.ok()) {
      status = sunk;
      break;
    }
  }
  if (!status.ok()) failed_.store(true, std::memory_order_release);
  worker_busy_ns_[worker] = busy_ns;
  // Per-worker partial row counts; RuntimeStats::Record accumulates, so the
  // per-digest totals equal the serial counts.
  if (ctx_->runtime_stats) {
    ctx_->runtime_stats->Record(scan_digest_, scan_rows);
    for (size_t s = 0; s < stage_digests_.size(); ++s)
      if (!stage_digests_[s].empty())
        ctx_->runtime_stats->Record(stage_digests_[s], stage_rows[s]);
  }
  return status;
}

int64_t MorselDriver::RecordCostAndThreshold(int64_t cost_us) {
  MutexLock lock(&cost_mu_);
  int64_t threshold = 0;
  // The baseline is the median of *previously* completed tasks, so a task
  // never dilutes the very baseline it is judged against; at least 3
  // completions are required before anyone can be called a straggler.
  if (completed_costs_.size() >= 3) {
    std::vector<int64_t> copy = completed_costs_;
    size_t mid = copy.size() / 2;
    std::nth_element(copy.begin(), copy.begin() + static_cast<long>(mid), copy.end());
    threshold = static_cast<int64_t>(
        ctx_->config->speculation_slowdown_factor * static_cast<double>(copy[mid]));
  }
  completed_costs_.push_back(cost_us);
  return threshold;
}

Result<RowBatch> MorselDriver::MaybeSpeculate(size_t morsel, RowBatch&& original,
                                              int64_t cpu_us, int64_t injected_us,
                                              int64_t* kept_cost_us) {
  int64_t cost_us = cpu_us + injected_us;
  *kept_cost_us = cost_us;
  int64_t threshold = RecordCostAndThreshold(cost_us);
  if (!ctx_->config->speculation_enabled || threshold <= 0 || cost_us <= threshold)
    return std::move(original);
  // Straggler: launch a duplicate attempt of the same morsel. Both attempts
  // produce byte-identical batches on success (corruption is always caught
  // by checksums before a batch is built), so keeping either is safe — the
  // choice only decides whose latency the query pays.
  if (ctx_->runtime_stats)
    ctx_->runtime_stats->speculative_tasks.fetch_add(1, std::memory_order_relaxed);
  bool spec_skipped = false;
  int64_t spec_injected_us = 0;
  Result<RowBatch> spec = Status::OK();
  {
    SimClock::TaskScope task_scope(&spec_injected_us);
    spec = scan_->ReadMorselWithRetry(morsel, &spec_skipped);
  }
  int64_t spec_cost_us = cpu_us + spec_injected_us;
  if (spec.ok() && !spec_skipped && spec_cost_us < cost_us) {
    // The duplicate finished first. Refund the original attempt's injected
    // latency: the cluster's critical path followed the winner. Ties keep
    // the original (strict <), making the winner deterministic.
    if (ctx_->clock) ctx_->clock->Charge(-injected_us);
    if (ctx_->runtime_stats)
      ctx_->runtime_stats->speculative_wins.fetch_add(1, std::memory_order_relaxed);
    *kept_cost_us = spec_cost_us;
    return spec;
  }
  // Original wins (or the duplicate failed): abandon the duplicate and
  // refund whatever latency it attracted.
  if (ctx_->clock) ctx_->clock->Charge(-spec_injected_us);
  return std::move(original);
}

Status MorselDriver::Run(
    int workers, const std::function<Status(int, size_t, RowBatch&&)>& sink) {
  workers_ = std::max(1, workers);
  failed_.store(false);
  next_morsel_.store(0);
  if (ctx_->metrics && !morsels_claimed_) {
    morsels_claimed_ = ctx_->metrics->counter(obs::metric::kMorselsClaimed);
    morsels_skipped_ = ctx_->metrics->counter(obs::metric::kMorselsSkipped);
    morsel_cost_us_ = ctx_->metrics->histogram(obs::metric::kMorselCostUs);
    morsel_queue_wait_us_ = ctx_->metrics->histogram(obs::metric::kMorselQueueWaitUs);
  }
  run_start_wall_us_ = SimClock::WallMicros();
  worker_busy_ns_.assign(static_cast<size_t>(workers_), 0);
  {
    MutexLock lock(&cost_mu_);
    completed_costs_.clear();
  }
  // Warm the first wave through the I/O elevator before workers start.
  for (int i = 0; i < workers_; ++i)
    scan_->PrefetchMorsel(static_cast<size_t>(i));
  std::vector<std::future<Status>> futures;
  if (ctx_->submit_worker) {
    for (int w = 1; w < workers_; ++w)
      futures.push_back(
          ctx_->submit_worker([this, w, &sink] { return WorkerLoop(w, sink); }));
  }
  Status status = WorkerLoop(0, sink);
  for (auto& f : futures) {
    Status s = f.get();
    if (status.ok() && !s.ok()) status = s;
  }
  // Scan CPU is modeled like container start-up: the virtual clock pays the
  // critical path — the slowest worker — so the morsel queue's speedup shows
  // up in measured time even when the host serializes the threads.
  int64_t critical_ns = 0;
  for (int64_t ns : worker_busy_ns_) critical_ns = std::max(critical_ns, ns);
  if (ctx_->clock) ctx_->clock->Charge(critical_ns / 1000);
  return status;
}

// --- ParallelScanOperator ---

ParallelScanOperator::ParallelScanOperator(ExecContext* ctx,
                                           ParallelPipelineSpec spec)
    : Operator(ctx),
      driver_(ctx, ParallelPipelineSpec(spec)),
      schema_(spec.stages.empty() ? spec.scan->schema
                                  : spec.stages.back()->schema) {}

Result<RowBatch> ParallelScanOperator::Next(bool* done) {
  if (!ran_) {
    ran_ = true;
    results_.resize(driver_.num_morsels());
    present_.assign(driver_.num_morsels(), 0);
    int workers = driver_.DecideWorkers();
    HIVE_RETURN_IF_ERROR(driver_.Run(
        workers, [this](int, size_t morsel, RowBatch&& batch) -> Status {
          // Disjoint morsel slots: ordered gather without locks.
          results_[morsel] = std::move(batch);
          present_[morsel] = 1;
          return Status::OK();
        }));
  }
  while (emit_ < results_.size() && !present_[emit_]) ++emit_;
  if (emit_ >= results_.size()) {
    *done = true;
    return RowBatch();
  }
  *done = false;
  RowBatch out = std::move(results_[emit_]);
  present_[emit_] = 0;
  ++emit_;
  rows_produced_ += static_cast<int64_t>(out.SelectedSize());
  return out;
}

// --- ParallelHashJoinOperator ---

ParallelHashJoinOperator::ParallelHashJoinOperator(
    ExecContext* ctx, ParallelPipelineSpec probe_spec, OperatorPtr build,
    TableRef::JoinType join_type, ExprPtr condition, Schema schema)
    : Operator(ctx),
      driver_(ctx, ParallelPipelineSpec(probe_spec)),
      build_(std::move(build)),
      probe_schema_(probe_spec.stages.empty() ? probe_spec.scan->schema
                                              : probe_spec.stages.back()->schema),
      schema_(std::move(schema)),
      core_(ctx, join_type, std::move(condition), &schema_),
      is_full_join_(join_type == TableRef::JoinType::kFull) {}

Status ParallelHashJoinOperator::Open() {
  HIVE_RETURN_IF_ERROR(build_->Open());
  HIVE_RETURN_IF_ERROR(core_.BindCondition(probe_schema_));
  HIVE_RETURN_IF_ERROR(core_.Build(build_.get()));
  // Probe pipeline opens (reducers, morsel enumeration) only after the
  // build finalized — build errors never touch the probe subtree.
  return driver_.Open();
}

Status ParallelHashJoinOperator::RunPipeline() {
  ran_ = true;
  if (core_.grace_active()) {
    // Grace mode trades probe parallelism for bounded memory: a single
    // worker claims morsels in order, so probe rows route to their hash
    // partitions in global input order — the sequence the merged output
    // reassembles by. The pipeline is disk-bound here anyway.
    HIVE_RETURN_IF_ERROR(
        driver_.Run(1, [this](int, size_t, RowBatch&& batch) -> Status {
          return core_.GraceAddProbeBatch(batch);
        }));
    return core_.GraceFinishProbe();
  }
  results_.resize(driver_.num_morsels());
  present_.assign(driver_.num_morsels(), 0);
  int workers = driver_.DecideWorkers();
  probe_busy_ns_.assign(static_cast<size_t>(workers), 0);
  HIVE_RETURN_IF_ERROR(driver_.Run(
      workers, [this](int worker, size_t morsel, RowBatch&& batch) -> Status {
        bool emitted = false;
        Result<RowBatch> out = core_.ProbeBatch(batch, &emitted);
        if (!out.ok()) return out.status();
        probe_busy_ns_[static_cast<size_t>(worker)] +=
            static_cast<int64_t>(batch.SelectedSize()) *
            core_.probe_ns_per_row();
        if (emitted) {
          // Disjoint morsel slots: ordered gather without locks.
          results_[morsel] = std::move(*out);
          present_[morsel] = 1;
        }
        return Status::OK();
      }));
  // Probe CPU pays the critical path — the slowest worker — like scan CPU.
  int64_t critical_ns = 0;
  for (int64_t ns : probe_busy_ns_) critical_ns = std::max(critical_ns, ns);
  if (ctx_->clock) ctx_->clock->Charge(critical_ns / 1000);
  return Status::OK();
}

Result<RowBatch> ParallelHashJoinOperator::Next(bool* done) {
  if (!ran_) HIVE_RETURN_IF_ERROR(RunPipeline());
  if (core_.grace_active()) {
    // Sequence-merged grace output (FULL OUTER tail included).
    HIVE_ASSIGN_OR_RETURN(RowBatch out, core_.GraceNextOutput(done));
    if (!*done) rows_produced_ += static_cast<int64_t>(out.num_rows());
    return out;
  }
  while (emit_ < results_.size() && !present_[emit_]) ++emit_;
  if (emit_ < results_.size()) {
    *done = false;
    RowBatch out = std::move(results_[emit_]);
    present_[emit_] = 0;
    ++emit_;
    rows_produced_ += static_cast<int64_t>(out.num_rows());
    return out;
  }
  if (is_full_join_ && !emitted_unmatched_) {
    emitted_unmatched_ = true;
    HIVE_ASSIGN_OR_RETURN(RowBatch out, core_.EmitUnmatchedRight());
    if (out.num_rows() > 0) {
      *done = false;
      rows_produced_ += static_cast<int64_t>(out.num_rows());
      return out;
    }
  }
  *done = true;
  return RowBatch();
}

Status ParallelHashJoinOperator::Close() {
  core_.AnnotateProfile();
  HIVE_RETURN_IF_ERROR(driver_.Close());
  return build_->Close();
}

// --- ParallelAggregateOperator ---

ParallelAggregateOperator::ParallelAggregateOperator(
    ExecContext* ctx, ParallelPipelineSpec spec, std::vector<ExprPtr> keys,
    std::vector<AggCall> aggs, Schema schema)
    : Operator(ctx),
      driver_(ctx, std::move(spec)),
      keys_(std::move(keys)),
      aggs_(std::move(aggs)),
      schema_(std::move(schema)) {}

Status ParallelAggregateOperator::RunPipeline() {
  ran_ = true;
  int workers = driver_.DecideWorkers();
  partials_.clear();
  worker_reservations_.clear();
  for (int w = 0; w < workers; ++w) {
    partials_.push_back(std::make_unique<GroupedAggState>(&keys_, &aggs_));
    worker_reservations_.push_back(
        std::make_unique<MemoryReservation>(ctx_->query_memory));
  }
  // The spill set is created eagerly: workers flush concurrently and must
  // not race a lazy construction. Scalar aggregates never spill (one group;
  // flushing cannot shrink it).
  const bool can_spill = ctx_->CanSpill() && !keys_.empty();
  if (can_spill && !spill_)
    spill_ = std::make_unique<AggSpillSet>(
        ctx_, ctx_->spill_dir + "/a" + std::to_string(NextSpillStreamId()),
        &keys_, &aggs_, std::max(2, ctx_->config->spill_partitions), workers);
  HIVE_RETURN_IF_ERROR(driver_.Run(
      workers,
      [this, can_spill](int worker, size_t morsel, RowBatch&& batch) -> Status {
        // Sequence rows by (morsel, row) so group order is independent of
        // the morsel-to-worker assignment. Row groups hold < 2^24 rows.
        GroupedAggState* state = partials_[static_cast<size_t>(worker)].get();
        HIVE_RETURN_IF_ERROR(
            state->Consume(batch, static_cast<uint64_t>(morsel) << 24));
        MemoryReservation* res =
            worker_reservations_[static_cast<size_t>(worker)].get();
        if (!res->GrowTo(static_cast<int64_t>(state->approx_bytes()))) {
          CountSpillMetric(ctx_, obs::metric::kSpillDeniedReservations, 1);
          if (!can_spill)
            return BudgetExceededStatus(
                "parallel hash aggregate",
                static_cast<int64_t>(state->approx_bytes()), ctx_);
          HIVE_RETURN_IF_ERROR(spill_->Flush(worker, state));
          res->Release();
        }
        return Status::OK();
      }));
  // Merge the thread-local partial states (partial-aggregate exchange).
  for (size_t w = 1; w < partials_.size(); ++w)
    partials_[0]->Merge(std::move(*partials_[w]));
  partials_.resize(1);
  if (spill_ && spill_->spilled()) {
    // The merged unspilled groups are the remainder; the sealed result
    // rebuilds partition-wise from the spill streams.
    HIVE_RETURN_IF_ERROR(spill_->PrepareEmit(partials_[0].get(), schema_));
    partials_[0]->Reset();
    for (auto& r : worker_reservations_) r->Release();
    return ctx_->OnStageBoundary(spill_->bytes_spilled());
  }
  partials_[0]->Seal();
  return ctx_->OnStageBoundary(partials_[0]->approx_bytes());
}

Result<RowBatch> ParallelAggregateOperator::Next(bool* done) {
  if (!ran_) HIVE_RETURN_IF_ERROR(RunPipeline());
  if (spill_ && spill_->spilled()) {
    HIVE_ASSIGN_OR_RETURN(RowBatch out, spill_->NextOutput(done));
    if (!*done) rows_produced_ += static_cast<int64_t>(out.num_rows());
    return out;
  }
  GroupedAggState& state = *partials_[0];
  size_t batch_size = static_cast<size_t>(ctx_->config->vector_batch_size);
  if (emit_index_ >= state.num_groups()) {
    *done = true;
    return RowBatch();
  }
  *done = false;
  size_t end = std::min(state.num_groups(), emit_index_ + batch_size);
  HIVE_ASSIGN_OR_RETURN(RowBatch out, state.Emit(emit_index_, end, schema_));
  emit_index_ = end;
  rows_produced_ += static_cast<int64_t>(out.num_rows());
  return out;
}

Status ParallelAggregateOperator::Close() {
  if (profile_node_ && spill_ && spill_->spilled()) {
    std::string& d = profile_node_->detail;
    if (!d.empty()) d += ", ";
    d += "spill=agg flushes=" + std::to_string(spill_->flushes()) +
         " spill_bytes=" + std::to_string(spill_->bytes_spilled());
  }
  return driver_.Close();
}

}  // namespace hive
