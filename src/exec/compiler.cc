#include "exec/compiler.h"

#include <algorithm>
#include <map>

#include "exec/parallel_scan.h"

namespace hive {

namespace {

/// Records an operator's execution span (rows/batches out, inclusive wall +
/// virtual time, memory estimate) into its OperatorProfileNode. The compiler
/// wraps every physical operator in one when the context carries a
/// QueryProfile; EXPLAIN ANALYZE renders the resulting tree.
class ProfilingOperator : public Operator {
 public:
  ProfilingOperator(ExecContext* ctx, OperatorPtr child,
                    obs::OperatorProfileNodePtr node)
      : Operator(ctx), child_(std::move(child)), node_(std::move(node)) {}

  Status Open() override {
    Span span(this);
    return child_->Open();
  }

  Result<RowBatch> Next(bool* done) override {
    Span span(this);
    auto batch = child_->Next(done);
    if (batch.ok() && !*done) {
      int64_t rows = static_cast<int64_t>(batch->SelectedSize());
      ++node_->batches;
      node_->rows_out += rows;
      rows_produced_ += rows;
      uint64_t bytes = batch->ByteSize();
      node_->bytes_out += bytes;
      max_batch_bytes_ = std::max(max_batch_bytes_, bytes);
      // Streaming operators hold one batch at a time; blocking operators
      // materialized everything they emitted.
      node_->peak_mem_bytes = node_->blocking ? node_->bytes_out : max_batch_bytes_;
    }
    return batch;
  }

  Status Close() override {
    Span span(this);
    return child_->Close();
  }

  const Schema& schema() const override { return child_->schema(); }

 private:
  /// RAII span: accumulates the call's wall + virtual (SimClock) time into
  /// the node. Times are inclusive of children; the tree subtracts.
  class Span {
   public:
    explicit Span(ProfilingOperator* op)
        : op_(op),
          wall0_(SimClock::WallMicros()),
          virt0_(op->ctx_->clock ? op->ctx_->clock->virtual_us() : 0) {}
    ~Span() {
      op_->node_->wall_us += SimClock::WallMicros() - wall0_;
      if (op_->ctx_->clock)
        op_->node_->virtual_us += op_->ctx_->clock->virtual_us() - virt0_;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    ProfilingOperator* op_;
    int64_t wall0_;
    int64_t virt0_;
  };

  OperatorPtr child_;
  obs::OperatorProfileNodePtr node_;
  uint64_t max_batch_bytes_ = 0;
};

const char* JoinTypeName(TableRef::JoinType t) {
  switch (t) {
    case TableRef::JoinType::kInner: return "inner";
    case TableRef::JoinType::kLeft: return "left";
    case TableRef::JoinType::kRight: return "right";
    case TableRef::JoinType::kFull: return "full";
    case TableRef::JoinType::kCross: return "cross";
    case TableRef::JoinType::kSemi: return "semi";
    case TableRef::JoinType::kAnti: return "anti";
  }
  return "?";
}

/// Fills a profile node's static identity from the plan node it profiles.
void LabelProfileNode(const RelNode& rel, obs::OperatorProfileNode* node) {
  switch (rel.kind) {
    case RelKind::kScan:
      node->name = "Scan";
      node->detail = rel.table.FullName();
      if (!rel.table.storage_handler.empty())
        node->detail += "@" + rel.table.storage_handler;
      break;
    case RelKind::kValues:
      node->name = "Values";
      break;
    case RelKind::kFilter:
      node->name = "Filter";
      break;
    case RelKind::kProject:
      node->name = "Project";
      break;
    case RelKind::kJoin:
      node->name = "HashJoin";
      node->detail = JoinTypeName(rel.join_type);
      node->blocking = true;
      break;
    case RelKind::kAggregate:
      node->name = "HashAgg";
      node->detail = "keys=" + std::to_string(rel.group_keys.size()) +
                     ",aggs=" + std::to_string(rel.aggs.size());
      node->blocking = true;
      break;
    case RelKind::kWindow:
      node->name = "Window";
      node->blocking = true;
      break;
    case RelKind::kSort:
      node->name = "Sort";
      node->blocking = true;
      break;
    case RelKind::kLimit:
      node->name = "Limit";
      break;
    case RelKind::kUnion:
      node->name = "UnionAll";
      break;
    case RelKind::kMinus:
      node->name = "Except";
      node->blocking = true;
      break;
    case RelKind::kIntersect:
      node->name = "Intersect";
      node->blocking = true;
      break;
  }
}

/// Wraps an operator to record its produced row count under the plan-node
/// digest when the query finishes; feeds re-optimization (Section 4.2).
class StatsRecordingOperator : public Operator {
 public:
  StatsRecordingOperator(ExecContext* ctx, OperatorPtr child, std::string digest)
      : Operator(ctx), child_(std::move(child)), digest_(std::move(digest)) {}

  Status Open() override { return child_->Open(); }
  Result<RowBatch> Next(bool* done) override {
    auto batch = child_->Next(done);
    if (batch.ok() && !*done)
      rows_produced_ += static_cast<int64_t>(batch->SelectedSize());
    return batch;
  }
  Status Close() override {
    if (ctx_->runtime_stats) ctx_->runtime_stats->Record(digest_, rows_produced_);
    return child_->Close();
  }
  const Schema& schema() const override { return child_->schema(); }

 private:
  OperatorPtr child_;
  std::string digest_;
};

class Compiler {
 public:
  explicit Compiler(ExecContext* ctx) : ctx_(ctx) {}

  Result<OperatorPtr> Compile(const RelNodePtr& plan) {
    if (ctx_->config->shared_work_enabled) CountDigests(plan);
    return CompileNode(plan);
  }

 private:
  /// Digest of a scan ignoring its pushed-down filters: scans of the same
  /// table/columns that differ only in residual predicates share one
  /// physical read, with each consumer re-applying its own filters above
  /// the spool (the "merge scans, diverge later" shape of Section 4.5).
  static std::string BareScanDigest(const RelNode& scan) {
    RelNode bare = scan;
    bare.scan_filters.clear();
    bare.semijoin_reducers.clear();
    return bare.Digest();
  }

  void CountDigests(const RelNodePtr& node) {
    // Only count subtrees that are worth spooling (contain a scan and are
    // below blocking operators in size).
    if (node->kind == RelKind::kScan || node->kind == RelKind::kFilter ||
        node->kind == RelKind::kProject || node->kind == RelKind::kJoin ||
        node->kind == RelKind::kAggregate) {
      ++digest_counts_[node->Digest()];
    }
    if (node->kind == RelKind::kScan && node->table.storage_handler.empty())
      ++bare_scan_counts_[BareScanDigest(*node)];
    for (const RelNodePtr& input : node->inputs) CountDigests(input);
    // Semijoin-reducer build plans execute too; count them so a build plan
    // equal to a main-plan subtree shares its spool.
    if (node->kind == RelKind::kScan)
      for (const SemiJoinReducer& r : node->semijoin_reducers)
        CountDigests(r.build_plan);
  }

  /// Profile-aware compile: opens a span node for `node`, compiles the
  /// subtree under it (children attach via recursion), and wraps the
  /// produced operator so actuals land on the node.
  Result<OperatorPtr> CompileNode(const RelNodePtr& node) {
    if (!ctx_->profile) return CompileNodeImpl(node);
    auto pnode = std::make_shared<obs::OperatorProfileNode>();
    LabelProfileNode(*node, pnode.get());
    obs::OperatorProfileNode* parent = profile_parent_;
    if (parent)
      parent->children.push_back(pnode);
    else
      ctx_->profile->AttachRoot(pnode);
    profile_parent_ = pnode.get();
    auto op = CompileNodeImpl(node);
    profile_parent_ = parent;
    if (!op.ok()) return op;
    return OperatorPtr(
        std::make_unique<ProfilingOperator>(ctx_, std::move(*op), pnode));
  }

  Result<OperatorPtr> CompileNodeImpl(const RelNodePtr& node) {
    // Shared work: reuse a spool for repeated subtrees.
    std::string digest;
    bool spoolable = false;
    if (ctx_->config->shared_work_enabled &&
        (node->kind == RelKind::kScan || node->kind == RelKind::kFilter ||
         node->kind == RelKind::kProject || node->kind == RelKind::kJoin ||
         node->kind == RelKind::kAggregate)) {
      digest = node->Digest();
      auto it = digest_counts_.find(digest);
      spoolable = it != digest_counts_.end() && it->second > 1;
    }
    if (spoolable) {
      auto spool = spools_.find(digest);
      if (spool != spools_.end()) {
        RelabelProfile("Spool", "shared:" + ProfileDetail());
        return OperatorPtr(
            std::make_unique<SpoolOperator>(ctx_, spool->second, node->schema));
      }
      HIVE_ASSIGN_OR_RETURN(OperatorPtr source, CompileBare(node));
      auto state = std::make_shared<SpoolState>();
      state->source = std::move(source);
      spools_[digest] = state;
      AnnotateProfile("spooled");
      return OperatorPtr(std::make_unique<SpoolOperator>(ctx_, state, node->schema));
    }
    // Scan-merge sharing: identical scans that differ only in pushed-down
    // filters read the table once through a spool; each consumer applies
    // its own filters on top.
    if (ctx_->config->shared_work_enabled && node->kind == RelKind::kScan &&
        node->table.storage_handler.empty() && node->semijoin_reducers.empty() &&
        !node->scan_filters.empty()) {
      std::string bare_digest = BareScanDigest(*node);
      auto it = bare_scan_counts_.find(bare_digest);
      if (it != bare_scan_counts_.end() && it->second > 1) {
        auto spool = spools_.find(bare_digest);
        std::shared_ptr<SpoolState> state;
        if (spool != spools_.end()) {
          state = spool->second;
        } else {
          auto bare = std::make_shared<RelNode>(*node);
          bare->scan_filters.clear();
          state = std::make_shared<SpoolState>();
          state->source = std::make_unique<ScanOperator>(ctx_, *bare);
          spools_[bare_digest] = state;
        }
        AnnotateProfile("merged-scan");
        OperatorPtr op = std::make_unique<SpoolOperator>(ctx_, state, node->schema);
        for (const ExprPtr& filter : node->scan_filters)
          op = std::make_unique<FilterOperator>(ctx_, std::move(op), filter);
        return op;
      }
    }
    return CompileBare(node);
  }

  /// Current profile node's detail (empty when profiling is off).
  std::string ProfileDetail() const {
    return profile_parent_ ? profile_parent_->detail : std::string();
  }

  /// Appends a tag to the current profile node's detail.
  void AnnotateProfile(const std::string& tag) {
    if (!profile_parent_) return;
    if (!profile_parent_->detail.empty()) profile_parent_->detail += ",";
    profile_parent_->detail += tag;
  }

  /// Rewrites the current profile node's identity (parallel pipelines
  /// replace a whole scan->filter->project chain with one operator).
  void RelabelProfile(const std::string& name, const std::string& detail) {
    if (!profile_parent_) return;
    profile_parent_->name = name;
    profile_parent_->detail = detail;
  }

  /// Morsel-driven parallelism is available outside MR mode (MapReduce
  /// models one task per containerized stage, not intra-fragment threads).
  bool ParallelEligible() const {
    return ctx_->config->parallel_scan_enabled &&
           ctx_->mode != RuntimeMode::kMapReduce;
  }

  bool IsSpooled(const RelNodePtr& node) const {
    if (!ctx_->config->shared_work_enabled) return false;
    auto it = digest_counts_.find(node->Digest());
    return it != digest_counts_.end() && it->second > 1;
  }

  /// Matches the scan-merge sharing condition of CompileNode: such scans
  /// must reach the spool path, not the parallel one.
  bool IsMergedScan(const RelNodePtr& scan) const {
    if (!ctx_->config->shared_work_enabled || !scan->semijoin_reducers.empty() ||
        scan->scan_filters.empty())
      return false;
    auto it = bare_scan_counts_.find(BareScanDigest(*scan));
    return it != bare_scan_counts_.end() && it->second > 1;
  }

  /// Collects `node` into a parallel leaf pipeline (native scan + stacked
  /// filter/project stages) when the whole chain is private — any node that
  /// participates in shared-work spooling keeps the serial operators so the
  /// spool machinery stays in charge.
  bool CollectPipeline(const RelNodePtr& node, ParallelPipelineSpec* spec) {
    if (!ParallelEligible()) return false;
    RelNodePtr cur = node;
    std::vector<RelNodePtr> stages;
    while (cur->kind == RelKind::kFilter || cur->kind == RelKind::kProject) {
      if (IsSpooled(cur)) return false;
      stages.push_back(cur);
      cur = cur->inputs[0];
    }
    if (cur->kind != RelKind::kScan || !cur->table.storage_handler.empty())
      return false;
    if (IsSpooled(cur) || IsMergedScan(cur)) return false;
    spec->scan = cur;
    std::reverse(stages.begin(), stages.end());
    spec->stages = std::move(stages);
    return true;
  }

  /// Builds the physical join for (left_rel JOIN right_rel): perfect-hash
  /// hint from plan-time key-shape analysis, morsel-parallel probe when the
  /// probe side collapses into a parallel leaf pipeline, serial hash join
  /// otherwise. `join_type` and `condition` are already normalized (right
  /// joins arrive as left joins over swapped inputs).
  Result<OperatorPtr> CompileJoin(const RelNodePtr& left_rel,
                                  const RelNodePtr& right_rel,
                                  TableRef::JoinType join_type, ExprPtr condition,
                                  const Schema& out_schema) {
    bool perfect_hint =
        ctx_->config->perfect_hash_join_enabled &&
        HashJoinCore::PerfectHashEligible(
            condition, static_cast<int>(left_rel->schema.num_fields()));
    ParallelPipelineSpec spec;
    if (ctx_->config->parallel_join_enabled && CollectPipeline(left_rel, &spec)) {
      HIVE_ASSIGN_OR_RETURN(OperatorPtr build, CompileNode(right_rel));
      AnnotateProfile("parallel");
      auto join = std::make_unique<ParallelHashJoinOperator>(
          ctx_, std::move(spec), std::move(build), join_type, std::move(condition),
          out_schema);
      join->core()->set_perfect_hash_hint(perfect_hint);
      join->core()->set_profile_node(profile_parent_);
      return OperatorPtr(std::move(join));
    }
    HIVE_ASSIGN_OR_RETURN(OperatorPtr left, CompileNode(left_rel));
    HIVE_ASSIGN_OR_RETURN(OperatorPtr right, CompileNode(right_rel));
    auto join = std::make_unique<HashJoinOperator>(ctx_, std::move(left),
                                                   std::move(right), join_type,
                                                   std::move(condition), out_schema);
    join->core()->set_perfect_hash_hint(perfect_hint);
    join->core()->set_profile_node(profile_parent_);
    return OperatorPtr(std::move(join));
  }

  Result<OperatorPtr> CompileBare(const RelNodePtr& node) {
    switch (node->kind) {
      case RelKind::kScan:
      case RelKind::kFilter:
      case RelKind::kProject: {
        // Parallel leaf pipeline: the gather operator records scan/filter
        // stats from its workers, so no StatsRecording wrapper here.
        ParallelPipelineSpec spec;
        if (CollectPipeline(node, &spec)) {
          // The whole scan->filter->project chain collapses into one
          // morsel-parallel operator; the span follows suit.
          RelabelProfile("ParallelScan", spec.scan->table.FullName());
          if (profile_parent_) profile_parent_->blocking = true;
          return OperatorPtr(
              std::make_unique<ParallelScanOperator>(ctx_, std::move(spec)));
        }
        break;
      }
      default:
        break;
    }
    switch (node->kind) {
      case RelKind::kScan: {
        if (!node->table.storage_handler.empty()) {
          if (!ctx_->external_scan_factory)
            return Status::NotSupported("no storage handler registered for " +
                                        node->table.storage_handler);
          return ctx_->external_scan_factory(*node);
        }
        auto op = std::make_unique<ScanOperator>(ctx_, *node);
        return OperatorPtr(std::make_unique<StatsRecordingOperator>(
            ctx_, std::move(op), node->Digest()));
      }
      case RelKind::kValues:
        return OperatorPtr(std::make_unique<ValuesOperator>(ctx_, *node));
      case RelKind::kFilter: {
        HIVE_ASSIGN_OR_RETURN(OperatorPtr child, CompileNode(node->inputs[0]));
        auto op = std::make_unique<FilterOperator>(ctx_, std::move(child),
                                                   node->predicate);
        return OperatorPtr(std::make_unique<StatsRecordingOperator>(
            ctx_, std::move(op), node->Digest()));
      }
      case RelKind::kProject: {
        HIVE_ASSIGN_OR_RETURN(OperatorPtr child, CompileNode(node->inputs[0]));
        return OperatorPtr(std::make_unique<ProjectOperator>(
            ctx_, std::move(child), node->exprs, node->schema));
      }
      case RelKind::kJoin: {
        if (node->join_type == TableRef::JoinType::kRight) {
          // Normalize: right join == left join with swapped inputs plus an
          // output permutation.
          size_t lw = node->inputs[0]->schema.num_fields();
          size_t rw = node->inputs[1]->schema.num_fields();
          // Rebind the condition into (right, left) order.
          ExprPtr condition = CloneExpr(node->condition);
          std::vector<int> mapping(lw + rw);
          for (size_t i = 0; i < lw; ++i) mapping[i] = static_cast<int>(rw + i);
          for (size_t j = 0; j < rw; ++j) mapping[lw + j] = static_cast<int>(j);
          RemapBindings(condition, mapping);
          Schema swapped;
          for (const Field& f : node->inputs[1]->schema.fields())
            swapped.AddField(f.name, f.type);
          for (const Field& f : node->inputs[0]->schema.fields())
            swapped.AddField(f.name, f.type);
          HIVE_ASSIGN_OR_RETURN(
              OperatorPtr join,
              CompileJoin(node->inputs[1], node->inputs[0],
                          TableRef::JoinType::kLeft, condition, swapped));
          // Permute back to (left, right).
          std::vector<ExprPtr> exprs;
          for (size_t i = 0; i < lw + rw; ++i) {
            size_t src = i < lw ? rw + i : i - lw;
            ExprPtr ref = MakeColumnRef("", swapped.field(src).name);
            ref->binding = static_cast<int>(src);
            ref->type = swapped.field(src).type;
            exprs.push_back(ref);
          }
          return OperatorPtr(std::make_unique<ProjectOperator>(
              ctx_, std::move(join), std::move(exprs), node->schema));
        }
        HIVE_ASSIGN_OR_RETURN(
            OperatorPtr op,
            CompileJoin(node->inputs[0], node->inputs[1], node->join_type,
                        node->condition, node->schema));
        return OperatorPtr(std::make_unique<StatsRecordingOperator>(
            ctx_, std::move(op), node->Digest()));
      }
      case RelKind::kAggregate: {
        // Scan -> filter/project -> partial aggregate: fold morsels into
        // per-worker states and merge, instead of aggregating a gathered
        // stream. Workers record the scan/filter stats; the wrapper here
        // records only the aggregate node itself.
        ParallelPipelineSpec spec;
        if (CollectPipeline(node->inputs[0], &spec)) {
          RelabelProfile(
              "ParallelAgg",
              spec.scan->table.FullName() + ",keys=" +
                  std::to_string(node->group_keys.size()) + ",aggs=" +
                  std::to_string(node->aggs.size()));
          if (profile_parent_) profile_parent_->blocking = true;
          auto op = std::make_unique<ParallelAggregateOperator>(
              ctx_, std::move(spec), node->group_keys, node->aggs, node->schema);
          op->set_profile_node(profile_parent_);
          return OperatorPtr(std::make_unique<StatsRecordingOperator>(
              ctx_, std::move(op), node->Digest()));
        }
        HIVE_ASSIGN_OR_RETURN(OperatorPtr child, CompileNode(node->inputs[0]));
        auto op = std::make_unique<HashAggregateOperator>(
            ctx_, std::move(child), node->group_keys, node->aggs, node->schema);
        op->set_profile_node(profile_parent_);
        return OperatorPtr(std::make_unique<StatsRecordingOperator>(
            ctx_, std::move(op), node->Digest()));
      }
      case RelKind::kWindow: {
        HIVE_ASSIGN_OR_RETURN(OperatorPtr child, CompileNode(node->inputs[0]));
        return OperatorPtr(std::make_unique<WindowOperator>(
            ctx_, std::move(child), node->window_calls, node->schema));
      }
      case RelKind::kSort: {
        HIVE_ASSIGN_OR_RETURN(OperatorPtr child, CompileNode(node->inputs[0]));
        auto op = std::make_unique<SortOperator>(ctx_, std::move(child),
                                                 node->sort_keys, node->limit);
        op->set_profile_node(profile_parent_);
        return OperatorPtr(std::move(op));
      }
      case RelKind::kLimit: {
        HIVE_ASSIGN_OR_RETURN(OperatorPtr child, CompileNode(node->inputs[0]));
        return OperatorPtr(
            std::make_unique<LimitOperator>(ctx_, std::move(child), node->limit));
      }
      case RelKind::kUnion: {
        std::vector<OperatorPtr> children;
        for (const RelNodePtr& input : node->inputs) {
          HIVE_ASSIGN_OR_RETURN(OperatorPtr child, CompileNode(input));
          children.push_back(std::move(child));
        }
        return OperatorPtr(std::make_unique<UnionOperator>(ctx_, std::move(children),
                                                           node->schema));
      }
      case RelKind::kMinus:
      case RelKind::kIntersect: {
        HIVE_ASSIGN_OR_RETURN(OperatorPtr left, CompileNode(node->inputs[0]));
        HIVE_ASSIGN_OR_RETURN(OperatorPtr right, CompileNode(node->inputs[1]));
        return OperatorPtr(std::make_unique<SetOpOperator>(
            ctx_, std::move(left), std::move(right),
            node->kind == RelKind::kIntersect));
      }
    }
    return Status::Internal("unknown plan node kind");
  }

  ExecContext* ctx_;
  /// Span node currently being compiled into; children attach here. Null
  /// when profiling is off or at the root of a plan.
  obs::OperatorProfileNode* profile_parent_ = nullptr;
  std::map<std::string, int> digest_counts_;
  std::map<std::string, int> bare_scan_counts_;
  std::map<std::string, std::shared_ptr<SpoolState>> spools_;
};

}  // namespace

Result<OperatorPtr> CompilePlan(ExecContext* ctx, const RelNodePtr& plan) {
  if (!ctx->compile_subplan) {
    ctx->compile_subplan = [ctx](const RelNodePtr& subplan) {
      return CompilePlan(ctx, subplan);
    };
  }
  Compiler compiler(ctx);
  return compiler.Compile(plan);
}

}  // namespace hive
