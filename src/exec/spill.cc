#include "exec/spill.h"

#include <algorithm>
#include <atomic>

#include "common/hash.h"
#include "common/serde.h"
#include "exec/task_retry.h"
#include "storage/cof.h"
#include "obs/metric_names.h"

namespace hive {

namespace {

constexpr char kSpillMagic[4] = {'S', 'P', 'L', '1'};
/// Chunk flush threshold: spill streams hold at most this much buffered.
constexpr size_t kSpillChunkBytes = 256 * 1024;
/// Checksum seed, distinct from the join/group hash seed.
constexpr uint64_t kSpillChecksumSeed = 0x53504c4c31ULL;

}  // namespace

Status BudgetExceededStatus(const char* op, int64_t bytes, ExecContext* ctx) {
  std::string msg = std::string(op) + " exceeded the memory budget (needs >" +
                    std::to_string(bytes) + " bytes";
  if (ctx && ctx->query_memory) {
    if (ctx->query_memory->query_limit() > 0)
      msg += ", query.memory.limit.bytes=" +
             std::to_string(ctx->query_memory->query_limit());
    if (ctx->query_memory->governor() && ctx->query_memory->governor()->limit() > 0)
      msg += ", exec.memory.limit.bytes=" +
             std::to_string(ctx->query_memory->governor()->limit());
  }
  msg += ") and spilling is unavailable";
  return Status::ResourceExhausted(std::move(msg));
}

uint64_t NextSpillStreamId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void CountSpillMetric(ExecContext* ctx, const char* name, int64_t delta) {
  if (ctx && ctx->metrics && delta != 0) ctx->metrics->counter(name)->Add(delta);
}

std::string SerializeSpillBatch(const RowBatch& batch,
                                const std::vector<uint64_t>* seqs) {
  std::string out;
  const size_t rows = batch.num_rows();
  const size_t cols = batch.num_columns();
  serde::PutU32(&out, static_cast<uint32_t>(rows));
  serde::PutU32(&out, static_cast<uint32_t>(cols));
  out.push_back(seqs ? 1 : 0);
  if (seqs)
    for (size_t r = 0; r < rows; ++r) serde::PutU64(&out, (*seqs)[r]);
  for (size_t r = 0; r < rows; ++r)
    for (size_t c = 0; c < cols; ++c)
      SerializeValue(&out, batch.column(c)->GetValue(r));
  return out;
}

Status DeserializeSpillBatch(const std::string& record, const Schema& schema,
                             RowBatch* batch, std::vector<uint64_t>* seqs) {
  size_t offset = 0;
  uint32_t rows = 0, cols = 0;
  if (!serde::GetU32(record, &offset, &rows) ||
      !serde::GetU32(record, &offset, &cols) || offset >= record.size())
    return Status::Corruption("spill batch header").MarkTransient();
  if (cols != schema.num_fields())
    return Status::Corruption("spill batch column count").MarkTransient();
  const bool has_seqs = record[offset++] != 0;
  if (seqs) seqs->clear();
  if (has_seqs) {
    for (uint32_t r = 0; r < rows; ++r) {
      uint64_t seq = 0;
      if (!serde::GetU64(record, &offset, &seq))
        return Status::Corruption("spill batch seqs").MarkTransient();
      if (seqs) seqs->push_back(seq);
    }
  }
  *batch = RowBatch(schema);
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      auto v = DeserializeValue(record, &offset);
      if (!v.ok()) return Status::Corruption("spill batch value").MarkTransient();
      batch->column(c)->AppendValue(*v);
    }
  }
  batch->set_num_rows(rows);
  return Status::OK();
}

// --- SpillChunkWriter ---

SpillChunkWriter::SpillChunkWriter(ExecContext* ctx, std::string prefix)
    : ctx_(ctx), prefix_(std::move(prefix)) {}

Status SpillChunkWriter::AppendRecord(const std::string& record) {
  serde::PutU32(&buffer_, static_cast<uint32_t>(record.size()));
  buffer_.append(record);
  ++num_records_;
  if (buffer_.size() >= kSpillChunkBytes) return WriteChunk();
  return Status::OK();
}

Status SpillChunkWriter::Finish() {
  if (!buffer_.empty()) return WriteChunk();
  return Status::OK();
}

Status SpillChunkWriter::WriteChunk() {
  std::string file;
  file.append(kSpillMagic, sizeof kSpillMagic);
  serde::PutU64(&file, Murmur64(buffer_.data(), buffer_.size(), kSpillChecksumSeed));
  serde::PutU32(&file, static_cast<uint32_t>(buffer_.size()));
  file.append(buffer_);
  const std::string path = prefix_ + ".c" + std::to_string(num_chunks_);
  const std::string tmp = path + ".tmp";
  FileSystem* fs = ctx_->fs;
  HIVE_RETURN_IF_ERROR(fs->WriteFile(tmp, file));
  // Rename into place under the task-attempt policy: a torn rename applied
  // but lost its ack, so every attempt probes the destination first.
  Status renamed = RunTaskAttempts(
      ctx_->config, ctx_->clock, ctx_->runtime_stats, [&]() -> Status {
        if (fs->Exists(path)) return Status::OK();
        return fs->Rename(tmp, path);
      });
  HIVE_RETURN_IF_ERROR(renamed);
  bytes_written_ += file.size();
  CountSpillMetric(ctx_, obs::metric::kSpillBytes, static_cast<int64_t>(file.size()));
  ++num_chunks_;
  buffer_.clear();
  return Status::OK();
}

// --- SpillChunkReader ---

SpillChunkReader::SpillChunkReader(ExecContext* ctx, std::string prefix,
                                   int num_chunks)
    : ctx_(ctx), prefix_(std::move(prefix)), num_chunks_(num_chunks) {}

Result<std::string> SpillChunkReader::ReadChunk(int index) {
  const std::string path = prefix_ + ".c" + std::to_string(index);
  return RunTaskAttempts(
      ctx_->config, ctx_->clock, ctx_->runtime_stats,
      [&]() -> Result<std::string> {
        HIVE_ASSIGN_OR_RETURN(std::string file, ctx_->fs->ReadFile(path));
        size_t offset = sizeof kSpillMagic;
        uint64_t checksum = 0;
        uint32_t len = 0;
        if (file.size() < offset ||
            file.compare(0, offset, kSpillMagic, offset) != 0 ||
            !serde::GetU64(file, &offset, &checksum) ||
            !serde::GetU32(file, &offset, &len) || file.size() - offset != len)
          return Status::Corruption("spill chunk framing: " + path).MarkTransient();
        std::string payload = file.substr(offset);
        if (Murmur64(payload.data(), payload.size(), kSpillChecksumSeed) != checksum)
          return Status::Corruption("spill chunk checksum mismatch: " + path)
              .MarkTransient();
        return payload;
      });
}

Result<bool> SpillChunkReader::NextRecord(std::string* record) {
  for (;;) {
    if (offset_ < payload_.size()) {
      uint32_t len = 0;
      if (!serde::GetU32(payload_, &offset_, &len) ||
          offset_ + len > payload_.size())
        return Status::Corruption("spill record framing: " + prefix_)
            .MarkTransient();
      record->assign(payload_, offset_, len);
      offset_ += len;
      return true;
    }
    if (next_chunk_ >= num_chunks_) return false;
    HIVE_ASSIGN_OR_RETURN(payload_, ReadChunk(next_chunk_++));
    offset_ = 0;
  }
}

// --- SpillBatchWriter / SpillBatchReader ---

SpillBatchWriter::SpillBatchWriter(ExecContext* ctx, std::string prefix,
                                   const Schema& schema, bool with_seqs)
    : ctx_(ctx),
      writer_(ctx, std::move(prefix)),
      schema_(schema),
      with_seqs_(with_seqs),
      buffer_(schema) {}

Status SpillBatchWriter::AppendRow(const RowBatch& batch, int32_t row,
                                   uint64_t seq) {
  for (size_t c = 0; c < buffer_.num_columns(); ++c)
    buffer_.column(c)->AppendFrom(*batch.column(c), static_cast<size_t>(row));
  if (with_seqs_) seqs_.push_back(seq);
  ++buffered_;
  ++num_rows_;
  return MaybeFlush();
}

Status SpillBatchWriter::AppendBatchRow(const RowBatch& dense, size_t row,
                                        uint64_t seq) {
  return AppendRow(dense, static_cast<int32_t>(row), seq);
}

Status SpillBatchWriter::MaybeFlush() {
  const size_t batch_rows =
      ctx_->config ? static_cast<size_t>(ctx_->config->vector_batch_size) : 1024;
  if (buffered_ >= batch_rows) return FlushBuffer();
  return Status::OK();
}

Status SpillBatchWriter::FlushBuffer() {
  if (buffered_ == 0) return Status::OK();
  buffer_.set_num_rows(buffered_);
  HIVE_RETURN_IF_ERROR(writer_.AppendRecord(
      SerializeSpillBatch(buffer_, with_seqs_ ? &seqs_ : nullptr)));
  buffer_ = RowBatch(schema_);
  seqs_.clear();
  buffered_ = 0;
  return Status::OK();
}

Status SpillBatchWriter::Finish() {
  HIVE_RETURN_IF_ERROR(FlushBuffer());
  return writer_.Finish();
}

SpillBatchReader::SpillBatchReader(ExecContext* ctx, const SpillBatchWriter& writer)
    : reader_(ctx, writer.prefix(), writer.num_chunks()),
      schema_(writer.schema()) {}

SpillBatchReader::SpillBatchReader(ExecContext* ctx, std::string prefix,
                                   int num_chunks, const Schema& schema)
    : reader_(ctx, std::move(prefix), num_chunks), schema_(schema) {}

Result<bool> SpillBatchReader::NextBatch(RowBatch* batch,
                                         std::vector<uint64_t>* seqs) {
  std::string record;
  HIVE_ASSIGN_OR_RETURN(bool more, reader_.NextRecord(&record));
  if (!more) return false;
  HIVE_RETURN_IF_ERROR(DeserializeSpillBatch(record, schema_, batch, seqs));
  return true;
}

}  // namespace hive
