#include <algorithm>
#include <numeric>

#include "common/hash.h"
#include "exec/operators.h"
#include "exec/vector_eval.h"
#include "optimizer/expr_eval.h"

namespace hive {

// --- Sort ---

SortOperator::SortOperator(ExecContext* ctx, OperatorPtr child,
                           std::vector<std::pair<ExprPtr, bool>> keys, int64_t fetch)
    : Operator(ctx), child_(std::move(child)), keys_(std::move(keys)), fetch_(fetch) {}

Result<RowBatch> SortOperator::Next(bool* done) {
  if (!sorted_) {
    sorted_ = true;
    HIVE_ASSIGN_OR_RETURN(RowBatch all, CollectAllIntoDense());
    // Evaluate the sort keys once over the dense batch.
    std::vector<ColumnVectorPtr> key_cols;
    for (const auto& [expr, asc] : keys_) {
      HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*expr, all));
      key_cols.push_back(std::move(col));
    }
    std::vector<int32_t> order(all.num_rows());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
      for (size_t k = 0; k < keys_.size(); ++k) {
        Value va = key_cols[k]->GetValue(a);
        Value vb = key_cols[k]->GetValue(b);
        int cmp = Value::Compare(va, vb);
        if (cmp != 0) return keys_[k].second ? cmp < 0 : cmp > 0;
      }
      return false;
    });
    if (fetch_ >= 0 && static_cast<int64_t>(order.size()) > fetch_)
      order.resize(static_cast<size_t>(fetch_));
    materialized_ = RowBatch(child_->schema());
    for (int32_t row : order)
      for (size_t c = 0; c < materialized_.num_columns(); ++c)
        materialized_.column(c)->AppendFrom(*all.column(c), row);
    materialized_.set_num_rows(order.size());
    HIVE_RETURN_IF_ERROR(ctx_->OnStageBoundary(all.ByteSize()));
  }
  if (emit_offset_ > 0 || materialized_.num_rows() == 0) {
    *done = true;
    return RowBatch();
  }
  emit_offset_ = materialized_.num_rows();
  rows_produced_ += static_cast<int64_t>(materialized_.num_rows());
  *done = false;
  return materialized_;
}

Result<RowBatch> SortOperator::CollectAllIntoDense() {
  RowBatch out(child_->schema());
  bool done = false;
  size_t rows = 0;
  for (;;) {
    HIVE_RETURN_IF_ERROR(CheckCancelled());
    HIVE_ASSIGN_OR_RETURN(RowBatch batch, child_->Next(&done));
    if (done) break;
    rows += batch.SelectedSize();
    for (size_t i = 0; i < batch.SelectedSize(); ++i) {
      int32_t row = batch.SelectedRow(i);
      for (size_t c = 0; c < out.num_columns(); ++c)
        out.column(c)->AppendFrom(*batch.column(c), row);
    }
  }
  out.set_num_rows(rows);
  return out;
}

// --- Window ---

WindowOperator::WindowOperator(ExecContext* ctx, OperatorPtr child,
                               std::vector<WindowCall> calls, Schema schema)
    : Operator(ctx),
      child_(std::move(child)),
      calls_(std::move(calls)),
      schema_(std::move(schema)) {}

Result<RowBatch> WindowOperator::Next(bool* done) {
  if (!computed_) {
    computed_ = true;
    // Materialize the input densely.
    RowBatch all(child_->schema());
    bool child_done = false;
    for (;;) {
      HIVE_RETURN_IF_ERROR(CheckCancelled());
      HIVE_ASSIGN_OR_RETURN(RowBatch batch, child_->Next(&child_done));
      if (child_done) break;
      for (size_t i = 0; i < batch.SelectedSize(); ++i) {
        int32_t row = batch.SelectedRow(i);
        for (size_t c = 0; c < all.num_columns(); ++c)
          all.column(c)->AppendFrom(*batch.column(c), row);
      }
    }
    all.set_num_rows(all.num_columns() ? all.column(0)->size() : 0);
    HIVE_RETURN_IF_ERROR(ctx_->OnStageBoundary(all.ByteSize()));

    result_ = RowBatch(schema_);
    for (size_t c = 0; c < all.num_columns(); ++c) result_.SetColumn(c, all.column(c));
    result_.set_num_rows(all.num_rows());
    const size_t n = all.num_rows();

    for (const WindowCall& call : calls_) {
      HIVE_RETURN_IF_ERROR(CheckCancelled());
      auto out_col = std::make_shared<ColumnVector>(call.result_type);
      out_col->Resize(n);

      // Partition the rows.
      std::vector<ColumnVectorPtr> part_cols;
      for (const ExprPtr& p : call.partition_by) {
        HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*p, all));
        part_cols.push_back(std::move(col));
      }
      std::vector<ColumnVectorPtr> order_cols;
      for (const auto& [o, asc] : call.order_by) {
        HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*o, all));
        order_cols.push_back(std::move(col));
      }
      ColumnVectorPtr arg_col;
      if (call.arg) {
        HIVE_ASSIGN_OR_RETURN(arg_col, EvalVector(*call.arg, all));
      }

      std::unordered_map<uint64_t, std::vector<int32_t>> partitions;
      for (size_t i = 0; i < n; ++i) {
        uint64_t h = 0x9e3779b97f4a7c15ULL;
        for (const auto& col : part_cols) h = HashCombine(h, col->GetValue(i).Hash());
        partitions[h].push_back(static_cast<int32_t>(i));
      }

      for (auto& [h, rows] : partitions) {
        // Sort the partition by the order keys.
        if (!order_cols.empty()) {
          std::stable_sort(rows.begin(), rows.end(), [&](int32_t a, int32_t b) {
            for (size_t k = 0; k < order_cols.size(); ++k) {
              int cmp = Value::Compare(order_cols[k]->GetValue(a),
                                       order_cols[k]->GetValue(b));
              if (cmp != 0) return call.order_by[k].second ? cmp < 0 : cmp > 0;
            }
            return false;
          });
        }
        if (call.func == "ROW_NUMBER") {
          for (size_t i = 0; i < rows.size(); ++i) {
            out_col->validity()[rows[i]] = 1;
            out_col->i64_data()[rows[i]] = static_cast<int64_t>(i + 1);
          }
        } else if (call.func == "RANK" || call.func == "DENSE_RANK") {
          int64_t rank = 0, dense = 0;
          for (size_t i = 0; i < rows.size(); ++i) {
            bool tie = i > 0;
            for (size_t k = 0; k < order_cols.size() && tie; ++k)
              if (Value::Compare(order_cols[k]->GetValue(rows[i]),
                                 order_cols[k]->GetValue(rows[i - 1])) != 0)
                tie = false;
            if (!tie) {
              rank = static_cast<int64_t>(i + 1);
              ++dense;
            }
            out_col->validity()[rows[i]] = 1;
            out_col->i64_data()[rows[i]] =
                call.func == "RANK" ? rank : dense;
          }
        } else {
          // Aggregate window functions. With ORDER BY: running aggregate up
          // to the current row (default frame); without: partition total.
          bool running = !order_cols.empty();
          auto assign = [&](int32_t row, const Value& v) {
            if (v.is_null()) {
              out_col->validity()[row] = 0;
              return;
            }
            out_col->validity()[row] = 1;
            if (call.result_type.kind == TypeKind::kDouble)
              out_col->f64_data()[row] = v.AsDouble();
            else if (call.result_type.kind == TypeKind::kString)
              out_col->str_data()[row] = v.str();
            else if (call.result_type.kind == TypeKind::kDecimal) {
              auto cast = v.CastTo(call.result_type);
              out_col->i64_data()[row] = cast.ok() && !cast->is_null() ? cast->i64() : 0;
            } else {
              out_col->i64_data()[row] = v.AsInt64();
            }
          };
          double sum_f64 = 0;
          int64_t sum_i64 = 0, count = 0;
          Value min, max;
          auto current = [&]() -> Value {
            if (call.func == "COUNT") return Value::Bigint(count);
            if (count == 0) return Value::Null();
            if (call.func == "SUM") {
              if (call.result_type.kind == TypeKind::kDouble) return Value::Double(sum_f64);
              if (call.result_type.kind == TypeKind::kDecimal)
                return Value::Decimal(sum_i64, call.result_type.scale);
              return Value::Bigint(sum_i64);
            }
            if (call.func == "AVG")
              return Value::Double(sum_f64 / static_cast<double>(count));
            if (call.func == "MIN") return min;
            if (call.func == "MAX") return max;
            return Value::Null();
          };
          auto accumulate = [&](int32_t row) {
            Value v = arg_col ? arg_col->GetValue(row) : Value::Bigint(1);
            if (arg_col && v.is_null()) return;
            ++count;
            sum_f64 += v.AsDouble();
            if (call.result_type.kind == TypeKind::kDecimal) {
              auto cast = v.CastTo(call.result_type);
              sum_i64 += cast.ok() && !cast->is_null() ? cast->i64() : 0;
            } else {
              sum_i64 += v.AsInt64();
            }
            if (min.is_null() || Value::Compare(v, min) < 0) min = v;
            if (max.is_null() || Value::Compare(v, max) > 0) max = v;
          };
          if (running) {
            for (int32_t row : rows) {
              accumulate(row);
              assign(row, current());
            }
          } else {
            for (int32_t row : rows) accumulate(row);
            Value total = current();
            for (int32_t row : rows) assign(row, total);
          }
        }
      }
      result_.SetColumn(result_.num_columns() - calls_.size() +
                            (&call - calls_.data()),
                        out_col);
    }
    rows_produced_ += static_cast<int64_t>(result_.num_rows());
  }
  if (emitted_ || result_.num_rows() == 0) {
    *done = true;
    return RowBatch();
  }
  emitted_ = true;
  *done = false;
  return result_;
}

}  // namespace hive
