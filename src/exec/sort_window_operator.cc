#include <algorithm>
#include <numeric>

#include "common/hash.h"
#include "exec/operators.h"
#include "exec/spill.h"
#include "exec/vector_eval.h"
#include "optimizer/expr_eval.h"
#include "obs/metric_names.h"

namespace hive {

// --- Sort ---

SortOperator::SortOperator(ExecContext* ctx, OperatorPtr child,
                           std::vector<std::pair<ExprPtr, bool>> keys, int64_t fetch)
    : Operator(ctx), child_(std::move(child)), keys_(std::move(keys)), fetch_(fetch) {}

namespace {

/// Largest ORDER BY ... LIMIT a bounded heap answers without materializing
/// (boxed rows; beyond this the generic sort paths win).
constexpr int64_t kTopKMaxFetch = 65536;

}  // namespace

Result<RowBatch> SortOperator::Next(bool* done) {
  if (!sorted_) HIVE_RETURN_IF_ERROR(ConsumeInput());
  if (merge_armed_) {
    HIVE_ASSIGN_OR_RETURN(RowBatch out, MergeNext(done));
    if (!*done) rows_produced_ += static_cast<int64_t>(out.num_rows());
    return out;
  }
  if (emit_offset_ > 0 || materialized_.num_rows() == 0) {
    *done = true;
    return RowBatch();
  }
  emit_offset_ = materialized_.num_rows();
  rows_produced_ += static_cast<int64_t>(materialized_.num_rows());
  *done = false;
  return materialized_;
}

Status SortOperator::ConsumeInput() {
  sorted_ = true;
  reservation_.Attach(ctx_->query_memory);
  if (fetch_ >= 0 && fetch_ <= kTopKMaxFetch) {
    used_top_k_ = true;
    return ConsumeTopK();
  }

  RowBatch pending(child_->schema());
  size_t rows = 0;
  uint64_t pending_bytes = 0;
  bool done = false;
  for (;;) {
    HIVE_RETURN_IF_ERROR(CheckCancelled());
    HIVE_ASSIGN_OR_RETURN(RowBatch batch, child_->Next(&done));
    if (done) break;
    rows += batch.SelectedSize();
    for (size_t i = 0; i < batch.SelectedSize(); ++i) {
      int32_t row = batch.SelectedRow(i);
      for (size_t c = 0; c < pending.num_columns(); ++c)
        pending.column(c)->AppendFrom(*batch.column(c), row);
    }
    pending.set_num_rows(rows);
    pending_bytes += batch.ByteSize();
    input_bytes_ += batch.ByteSize();
    if (!reservation_.GrowTo(static_cast<int64_t>(pending_bytes))) {
      CountSpillMetric(ctx_, obs::metric::kSpillDeniedReservations, 1);
      if (!ctx_->CanSpill())
        return BudgetExceededStatus("sort",
                                    static_cast<int64_t>(pending_bytes), ctx_);
      HIVE_RETURN_IF_ERROR(SpillRun(&pending));
      reservation_.Release();
      rows = 0;
      pending_bytes = 0;
    }
  }

  if (runs_.empty()) {
    // Whole input fit: the classic dense materialize + stable sort.
    std::vector<ColumnVectorPtr> key_cols;
    for (const auto& [expr, asc] : keys_) {
      HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*expr, pending));
      key_cols.push_back(std::move(col));
    }
    std::vector<int32_t> order(pending.num_rows());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
      for (size_t k = 0; k < keys_.size(); ++k) {
        Value va = key_cols[k]->GetValue(a);
        Value vb = key_cols[k]->GetValue(b);
        int cmp = Value::Compare(va, vb);
        if (cmp != 0) return keys_[k].second ? cmp < 0 : cmp > 0;
      }
      return false;
    });
    if (fetch_ >= 0 && static_cast<int64_t>(order.size()) > fetch_)
      order.resize(static_cast<size_t>(fetch_));
    materialized_ = RowBatch(child_->schema());
    for (int32_t row : order)
      for (size_t c = 0; c < materialized_.num_columns(); ++c)
        materialized_.column(c)->AppendFrom(*pending.column(c), row);
    materialized_.set_num_rows(order.size());
    return ctx_->OnStageBoundary(pending.ByteSize());
  }

  // External merge sort: the tail chunk becomes the last run, then a k-way
  // merge streams the runs back. Runs are consecutive time slices of the
  // input, each stable-sorted, and the merge breaks key ties toward the
  // earlier run — together that reproduces std::stable_sort over the whole
  // input exactly.
  if (pending.num_rows() > 0) HIVE_RETURN_IF_ERROR(SpillRun(&pending));
  reservation_.Release();
  uint64_t spill_bytes = 0;
  for (const std::unique_ptr<SpillBatchWriter>& run : runs_)
    spill_bytes += run->bytes_written();
  cursors_.clear();
  for (std::unique_ptr<SpillBatchWriter>& run : runs_) {
    cursors_.emplace_back();
    MergeCursor& c = cursors_.back();
    c.batch = RowBatch(child_->schema());
    c.reader = std::make_unique<SpillBatchReader>(ctx_, *run);
    HIVE_RETURN_IF_ERROR(RefillCursor(&c));
  }
  merge_armed_ = true;
  CountSpillMetric(ctx_, obs::metric::kSpillMergePasses, 1);
  return ctx_->OnStageBoundary(spill_bytes);
}

Status SortOperator::SpillRun(RowBatch* pending) {
  if (pending->num_rows() == 0) return Status::OK();
  std::vector<ColumnVectorPtr> key_cols;
  for (const auto& [expr, asc] : keys_) {
    HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*expr, *pending));
    key_cols.push_back(std::move(col));
  }
  std::vector<int32_t> order(pending->num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    for (size_t k = 0; k < keys_.size(); ++k) {
      Value va = key_cols[k]->GetValue(a);
      Value vb = key_cols[k]->GetValue(b);
      int cmp = Value::Compare(va, vb);
      if (cmp != 0) return keys_[k].second ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  auto run = std::make_unique<SpillBatchWriter>(
      ctx_, ctx_->spill_dir + "/s" + std::to_string(NextSpillStreamId()),
      child_->schema(), /*with_seqs=*/false);
  for (int32_t row : order)
    HIVE_RETURN_IF_ERROR(run->AppendRow(*pending, row, 0));
  HIVE_RETURN_IF_ERROR(run->Finish());
  CountSpillMetric(ctx_, obs::metric::kSpillPartitions, 1);
  runs_.push_back(std::move(run));
  *pending = RowBatch(child_->schema());
  return Status::OK();
}

Status SortOperator::RefillCursor(MergeCursor* c) {
  c->pos = 0;
  HIVE_ASSIGN_OR_RETURN(bool more, c->reader->NextBatch(&c->batch, nullptr));
  if (!more) {
    c->done = true;
    return Status::OK();
  }
  c->keys.clear();
  for (const auto& [expr, asc] : keys_) {
    HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*expr, c->batch));
    c->keys.push_back(std::move(col));
  }
  return Status::OK();
}

Result<RowBatch> SortOperator::MergeNext(bool* done) {
  *done = false;
  const size_t limit =
      ctx_->config ? static_cast<size_t>(ctx_->config->vector_batch_size) : 1024;
  // Strictly-less comparison scanning cursors in run order: key ties keep
  // the earliest run, i.e. original input order (stable-sort semantics).
  auto less = [this](const MergeCursor& a, const MergeCursor& b) {
    for (size_t k = 0; k < keys_.size(); ++k) {
      Value va = a.keys[k]->GetValue(a.pos);
      Value vb = b.keys[k]->GetValue(b.pos);
      int cmp = Value::Compare(va, vb);
      if (cmp != 0) return keys_[k].second ? cmp < 0 : cmp > 0;
    }
    return false;
  };
  RowBatch out(child_->schema());
  size_t out_rows = 0;
  while (out_rows < limit) {
    if (fetch_ >= 0 && merge_emitted_ >= fetch_) break;
    MergeCursor* best = nullptr;
    for (MergeCursor& c : cursors_) {
      if (c.done) continue;
      if (!best || less(c, *best)) best = &c;
    }
    if (!best) break;
    for (size_t col = 0; col < out.num_columns(); ++col)
      out.column(col)->AppendFrom(*best->batch.column(col), best->pos);
    ++out_rows;
    ++merge_emitted_;
    ++best->pos;
    if (best->pos >= best->batch.num_rows()) HIVE_RETURN_IF_ERROR(RefillCursor(best));
  }
  out.set_num_rows(out_rows);
  if (out_rows == 0) *done = true;
  return out;
}

Status SortOperator::ConsumeTopK() {
  // Bounded ORDER BY ... LIMIT: a max-heap of the K best (boxed) rows. An
  // incoming row replaces the heap's worst entry only when strictly better
  // by (keys, input position) — exactly stable_sort + truncate semantics,
  // with O(K) resident rows and no spill.
  struct Entry {
    std::vector<Value> keys;
    std::vector<Value> row;
    uint64_t seq;
  };
  auto before = [this](const Entry& a, const Entry& b) {
    for (size_t k = 0; k < keys_.size(); ++k) {
      int cmp = Value::Compare(a.keys[k], b.keys[k]);
      if (cmp != 0) return keys_[k].second ? cmp < 0 : cmp > 0;
    }
    return a.seq < b.seq;
  };
  auto value_bytes = [](const Value& v) -> uint64_t {
    uint64_t bytes = sizeof(Value);
    if (v.kind() == TypeKind::kString) bytes += v.str().capacity();
    return bytes;
  };
  auto entry_bytes = [&](const Entry& e) -> uint64_t {
    uint64_t bytes = sizeof(Entry);
    for (const Value& v : e.keys) bytes += value_bytes(v);
    for (const Value& v : e.row) bytes += value_bytes(v);
    return bytes;
  };

  const size_t cap = static_cast<size_t>(fetch_);
  std::vector<Entry> heap;
  uint64_t heap_bytes = 0;
  uint64_t seq = 0;
  bool done = false;
  const size_t width = child_->schema().num_fields();
  for (;;) {
    HIVE_RETURN_IF_ERROR(CheckCancelled());
    HIVE_ASSIGN_OR_RETURN(RowBatch batch, child_->Next(&done));
    if (done) break;
    if (cap == 0) continue;  // LIMIT 0 still drains the child
    std::vector<ColumnVectorPtr> key_cols;
    for (const auto& [expr, asc] : keys_) {
      HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*expr, batch));
      key_cols.push_back(std::move(col));
    }
    for (size_t i = 0; i < batch.SelectedSize(); ++i) {
      int32_t src = batch.SelectedRow(i);
      Entry e;
      e.seq = seq++;
      e.keys.reserve(key_cols.size());
      for (const ColumnVectorPtr& col : key_cols)
        e.keys.push_back(col->GetValue(static_cast<size_t>(src)));
      if (heap.size() == cap && !before(e, heap.front())) continue;
      e.row.reserve(width);
      for (size_t c = 0; c < width; ++c)
        e.row.push_back(batch.column(c)->GetValue(static_cast<size_t>(src)));
      heap_bytes += entry_bytes(e);
      if (heap.size() == cap) {
        std::pop_heap(heap.begin(), heap.end(), before);
        heap_bytes -= entry_bytes(heap.back());
        heap.pop_back();
      }
      heap.push_back(std::move(e));
      std::push_heap(heap.begin(), heap.end(), before);
    }
    if (!reservation_.GrowTo(static_cast<int64_t>(heap_bytes))) {
      CountSpillMetric(ctx_, obs::metric::kSpillDeniedReservations, 1);
      // The heap is the minimal state answering this query; it cannot spill.
      return BudgetExceededStatus("top-k sort",
                                  static_cast<int64_t>(heap_bytes), ctx_);
    }
  }
  std::sort(heap.begin(), heap.end(), before);
  materialized_ = RowBatch(child_->schema());
  for (const Entry& e : heap)
    for (size_t c = 0; c < width; ++c)
      materialized_.column(c)->AppendValue(e.row[c]);
  materialized_.set_num_rows(heap.size());
  return ctx_->OnStageBoundary(heap_bytes);
}

Status SortOperator::Close() {
  if (profile_node_) {
    std::string& d = profile_node_->detail;
    auto add = [&d](const std::string& s) {
      if (!d.empty()) d += ", ";
      d += s;
    };
    if (used_top_k_) add("top_k=" + std::to_string(fetch_));
    if (!runs_.empty()) {
      uint64_t bytes = 0;
      for (const std::unique_ptr<SpillBatchWriter>& r : runs_)
        bytes += r->bytes_written();
      add("spill=sort runs=" + std::to_string(runs_.size()) +
          " spill_bytes=" + std::to_string(bytes));
    }
  }
  return child_->Close();
}

// --- Window ---

WindowOperator::WindowOperator(ExecContext* ctx, OperatorPtr child,
                               std::vector<WindowCall> calls, Schema schema)
    : Operator(ctx),
      child_(std::move(child)),
      calls_(std::move(calls)),
      schema_(std::move(schema)) {}

Result<RowBatch> WindowOperator::Next(bool* done) {
  if (!computed_) {
    computed_ = true;
    // Materialize the input densely.
    RowBatch all(child_->schema());
    bool child_done = false;
    for (;;) {
      HIVE_RETURN_IF_ERROR(CheckCancelled());
      HIVE_ASSIGN_OR_RETURN(RowBatch batch, child_->Next(&child_done));
      if (child_done) break;
      for (size_t i = 0; i < batch.SelectedSize(); ++i) {
        int32_t row = batch.SelectedRow(i);
        for (size_t c = 0; c < all.num_columns(); ++c)
          all.column(c)->AppendFrom(*batch.column(c), row);
      }
    }
    all.set_num_rows(all.num_columns() ? all.column(0)->size() : 0);
    HIVE_RETURN_IF_ERROR(ctx_->OnStageBoundary(all.ByteSize()));

    result_ = RowBatch(schema_);
    for (size_t c = 0; c < all.num_columns(); ++c) result_.SetColumn(c, all.column(c));
    result_.set_num_rows(all.num_rows());
    const size_t n = all.num_rows();

    for (const WindowCall& call : calls_) {
      HIVE_RETURN_IF_ERROR(CheckCancelled());
      auto out_col = std::make_shared<ColumnVector>(call.result_type);
      out_col->Resize(n);

      // Partition the rows.
      std::vector<ColumnVectorPtr> part_cols;
      for (const ExprPtr& p : call.partition_by) {
        HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*p, all));
        part_cols.push_back(std::move(col));
      }
      std::vector<ColumnVectorPtr> order_cols;
      for (const auto& [o, asc] : call.order_by) {
        HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*o, all));
        order_cols.push_back(std::move(col));
      }
      ColumnVectorPtr arg_col;
      if (call.arg) {
        HIVE_ASSIGN_OR_RETURN(arg_col, EvalVector(*call.arg, all));
      }

      std::unordered_map<uint64_t, std::vector<int32_t>> partitions;
      for (size_t i = 0; i < n; ++i) {
        uint64_t h = 0x9e3779b97f4a7c15ULL;
        for (const auto& col : part_cols) h = HashCombine(h, col->GetValue(i).Hash());
        partitions[h].push_back(static_cast<int32_t>(i));
      }

      for (auto& [h, rows] : partitions) {
        // Sort the partition by the order keys.
        if (!order_cols.empty()) {
          std::stable_sort(rows.begin(), rows.end(), [&](int32_t a, int32_t b) {
            for (size_t k = 0; k < order_cols.size(); ++k) {
              int cmp = Value::Compare(order_cols[k]->GetValue(a),
                                       order_cols[k]->GetValue(b));
              if (cmp != 0) return call.order_by[k].second ? cmp < 0 : cmp > 0;
            }
            return false;
          });
        }
        if (call.func == "ROW_NUMBER") {
          for (size_t i = 0; i < rows.size(); ++i) {
            out_col->validity()[rows[i]] = 1;
            out_col->i64_data()[rows[i]] = static_cast<int64_t>(i + 1);
          }
        } else if (call.func == "RANK" || call.func == "DENSE_RANK") {
          int64_t rank = 0, dense = 0;
          for (size_t i = 0; i < rows.size(); ++i) {
            bool tie = i > 0;
            for (size_t k = 0; k < order_cols.size() && tie; ++k)
              if (Value::Compare(order_cols[k]->GetValue(rows[i]),
                                 order_cols[k]->GetValue(rows[i - 1])) != 0)
                tie = false;
            if (!tie) {
              rank = static_cast<int64_t>(i + 1);
              ++dense;
            }
            out_col->validity()[rows[i]] = 1;
            out_col->i64_data()[rows[i]] =
                call.func == "RANK" ? rank : dense;
          }
        } else {
          // Aggregate window functions. With ORDER BY: running aggregate up
          // to the current row (default frame); without: partition total.
          bool running = !order_cols.empty();
          auto assign = [&](int32_t row, const Value& v) {
            if (v.is_null()) {
              out_col->validity()[row] = 0;
              return;
            }
            out_col->validity()[row] = 1;
            if (call.result_type.kind == TypeKind::kDouble)
              out_col->f64_data()[row] = v.AsDouble();
            else if (call.result_type.kind == TypeKind::kString)
              out_col->str_data()[row] = v.str();
            else if (call.result_type.kind == TypeKind::kDecimal) {
              auto cast = v.CastTo(call.result_type);
              out_col->i64_data()[row] = cast.ok() && !cast->is_null() ? cast->i64() : 0;
            } else {
              out_col->i64_data()[row] = v.AsInt64();
            }
          };
          double sum_f64 = 0;
          int64_t sum_i64 = 0, count = 0;
          Value min, max;
          auto current = [&]() -> Value {
            if (call.func == "COUNT") return Value::Bigint(count);
            if (count == 0) return Value::Null();
            if (call.func == "SUM") {
              if (call.result_type.kind == TypeKind::kDouble) return Value::Double(sum_f64);
              if (call.result_type.kind == TypeKind::kDecimal)
                return Value::Decimal(sum_i64, call.result_type.scale);
              return Value::Bigint(sum_i64);
            }
            if (call.func == "AVG")
              return Value::Double(sum_f64 / static_cast<double>(count));
            if (call.func == "MIN") return min;
            if (call.func == "MAX") return max;
            return Value::Null();
          };
          auto accumulate = [&](int32_t row) {
            Value v = arg_col ? arg_col->GetValue(row) : Value::Bigint(1);
            if (arg_col && v.is_null()) return;
            ++count;
            sum_f64 += v.AsDouble();
            if (call.result_type.kind == TypeKind::kDecimal) {
              auto cast = v.CastTo(call.result_type);
              sum_i64 += cast.ok() && !cast->is_null() ? cast->i64() : 0;
            } else {
              sum_i64 += v.AsInt64();
            }
            if (min.is_null() || Value::Compare(v, min) < 0) min = v;
            if (max.is_null() || Value::Compare(v, max) > 0) max = v;
          };
          if (running) {
            for (int32_t row : rows) {
              accumulate(row);
              assign(row, current());
            }
          } else {
            for (int32_t row : rows) accumulate(row);
            Value total = current();
            for (int32_t row : rows) assign(row, total);
          }
        }
      }
      result_.SetColumn(result_.num_columns() - calls_.size() +
                            (&call - calls_.data()),
                        out_col);
    }
    rows_produced_ += static_cast<int64_t>(result_.num_rows());
  }
  if (emitted_ || result_.num_rows() == 0) {
    *done = true;
    return RowBatch();
  }
  emitted_ = true;
  *done = false;
  return result_;
}

}  // namespace hive
