#include "exec/operator.h"

namespace hive {

Result<RowBatch> CollectAll(Operator* op) {
  HIVE_RETURN_IF_ERROR(op->Open());
  RowBatch out(op->schema());
  bool done = false;
  for (;;) {
    HIVE_ASSIGN_OR_RETURN(RowBatch batch, op->Next(&done));
    if (done) break;
    for (size_t i = 0; i < batch.SelectedSize(); ++i) {
      int32_t row = batch.SelectedRow(i);
      for (size_t c = 0; c < out.num_columns() && c < batch.num_columns(); ++c)
        out.column(c)->AppendFrom(*batch.column(c), row);
    }
    out.set_num_rows(out.num_columns() > 0 ? out.column(0)->size()
                                           : out.num_rows() + batch.SelectedSize());
  }
  HIVE_RETURN_IF_ERROR(op->Close());
  return out;
}

Result<std::vector<std::vector<Value>>> CollectRows(Operator* op) {
  HIVE_ASSIGN_OR_RETURN(RowBatch batch, CollectAll(op));
  std::vector<std::vector<Value>> rows;
  rows.reserve(batch.num_rows());
  for (size_t i = 0; i < batch.num_rows(); ++i) rows.push_back(batch.GetRow(i));
  return rows;
}

}  // namespace hive
