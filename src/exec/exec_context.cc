#include "exec/exec_context.h"

#include <algorithm>

#include "exec/task_retry.h"

namespace hive {

void RecordTaskAttempt(RuntimeStats* stats) {
  if (stats) stats->task_attempts.fetch_add(1, std::memory_order_relaxed);
}

void RecordTaskRetry(RuntimeStats* stats) {
  if (stats) stats->task_retries.fetch_add(1, std::memory_order_relaxed);
}

Status ExecContext::OnStageBoundary(uint64_t bytes) {
  ++stage_counter;
  shuffle_bytes += bytes;
  if (mode == RuntimeMode::kMapReduce) {
    // Each MR stage launches fresh containers...
    if (clock && config) clock->Charge(config->container_startup_us);
    // ...and materializes its shuffle output to the distributed FS
    // (mr.materialize.shuffle lets tests run the MR cost model without the
    // filesystem round-trip).
    if (fs && config && config->mr_materialize_shuffle) {
      std::string tmp = "/tmp/shuffle/stage_" + std::to_string(stage_counter) + "_" +
                        std::to_string(reinterpret_cast<uintptr_t>(this));
      std::string payload(static_cast<size_t>(std::min<uint64_t>(bytes, 8u << 20)), 's');
      HIVE_RETURN_IF_ERROR(fs->WriteFile(tmp, payload));
      HIVE_ASSIGN_OR_RETURN(std::string back, fs->ReadFile(tmp));
      (void)back;
      HIVE_RETURN_IF_ERROR(fs->DeleteFile(tmp));
    }
  }
  return Status::OK();
}

void ExecContext::ArmDeadline() {
  deadline_wall_start_us = SimClock::WallMicros();
  deadline_virt_start_us = clock ? clock->virtual_us() : 0;
  deadline_armed = true;
}

Status ExecContext::CheckInterrupted() const {
  if (deadline_armed && config && config->query_timeout_ms > 0 &&
      !(cancelled && cancelled->load())) {
    int64_t elapsed_us = SimClock::WallMicros() - deadline_wall_start_us;
    if (clock) elapsed_us += clock->virtual_us() - deadline_virt_start_us;
    if (elapsed_us / 1000 >= config->query_timeout_ms) {
      // Deadline trigger: raise the same kill flag the workload manager
      // uses, so every operator aborts at its next interruption point.
      std::string why = "query deadline exceeded: query.timeout.ms=" +
                        std::to_string(config->query_timeout_ms);
      if (kill_reason) kill_reason->Set(why);
      if (cancelled) cancelled->store(true);
      return Status::ResourceExhausted(std::move(why));
    }
  }
  if (IsCancelled()) {
    std::string why = kill_reason
                          ? kill_reason->GetOr("query cancelled by workload manager")
                          : "query cancelled by workload manager";
    return Status::ResourceExhausted(std::move(why));
  }
  return Status::OK();
}

void ExecContext::OnQueryStart() {
  // Tez allocates YARN containers once per query; LLAP daemons are already
  // running, so interactive queries skip the allocation entirely.
  if (mode == RuntimeMode::kTez && clock && config)
    clock->Charge(config->container_startup_us);
  if (mode == RuntimeMode::kMapReduce && clock && config)
    clock->Charge(config->container_startup_us);  // job client submission
}

}  // namespace hive
