#include "exec/exec_context.h"

#include <algorithm>

namespace hive {

Status ExecContext::OnStageBoundary(uint64_t bytes) {
  ++stage_counter;
  shuffle_bytes += bytes;
  if (mode == RuntimeMode::kMapReduce) {
    // Each MR stage launches fresh containers...
    if (clock && config) clock->Charge(config->container_startup_us);
    // ...and materializes its shuffle output to the distributed FS.
    if (fs) {
      std::string tmp = "/tmp/shuffle/stage_" + std::to_string(stage_counter) + "_" +
                        std::to_string(reinterpret_cast<uintptr_t>(this));
      std::string payload(static_cast<size_t>(std::min<uint64_t>(bytes, 8u << 20)), 's');
      HIVE_RETURN_IF_ERROR(fs->WriteFile(tmp, payload));
      HIVE_ASSIGN_OR_RETURN(std::string back, fs->ReadFile(tmp));
      (void)back;
      HIVE_RETURN_IF_ERROR(fs->DeleteFile(tmp));
    }
  }
  return Status::OK();
}

void ExecContext::OnQueryStart() {
  // Tez allocates YARN containers once per query; LLAP daemons are already
  // running, so interactive queries skip the allocation entirely.
  if (mode == RuntimeMode::kTez && clock && config)
    clock->Charge(config->container_startup_us);
  if (mode == RuntimeMode::kMapReduce && clock && config)
    clock->Charge(config->container_startup_us);  // job client submission
}

}  // namespace hive
