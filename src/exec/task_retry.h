#ifndef HIVE_EXEC_TASK_RETRY_H_
#define HIVE_EXEC_TASK_RETRY_H_

#include <algorithm>
#include <utility>

#include "common/config.h"
#include "common/sim_clock.h"
#include "common/status.h"

namespace hive {

struct RuntimeStats;
void RecordTaskAttempt(RuntimeStats* stats);
void RecordTaskRetry(RuntimeStats* stats);

inline bool IsTransientFailure(const Status& s) { return s.IsTransient(); }
template <typename T>
bool IsTransientFailure(const Result<T>& r) {
  return r.status().IsTransient();
}

/// Task-attempt retry policy, the Tez failure model at every granularity the
/// runtime re-runs work: a morsel read, a reader open, a whole query vertex.
/// `fn` is run up to `task.max.attempts` times; a *transient* failure
/// (flaky DFS read, chunk checksum mismatch, torn rename ack) re-runs after
/// exponential backoff charged to the virtual clock, while permanent errors
/// and success return immediately. `fn` must be re-runnable: each call is a
/// fresh attempt that rebuilds whatever state the previous one left behind.
template <typename Fn>
auto RunTaskAttempts(const Config* config, SimClock* clock, RuntimeStats* stats,
                     Fn&& fn) -> decltype(fn()) {
  const int max_attempts = std::max(1, config ? config->task_max_attempts : 1);
  for (int attempt = 0;; ++attempt) {
    RecordTaskAttempt(stats);
    auto result = fn();
    if (result.ok() || !IsTransientFailure(result) || attempt + 1 >= max_attempts)
      return result;
    RecordTaskRetry(stats);
    if (clock && config)
      clock->Charge(config->task_retry_backoff_us << attempt);
  }
}

}  // namespace hive

#endif  // HIVE_EXEC_TASK_RETRY_H_
