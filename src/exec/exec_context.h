#ifndef HIVE_EXEC_EXEC_CONTEXT_H_
#define HIVE_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>

#include "common/cancel.h"
#include "common/column_vector.h"
#include "common/config.h"
#include "common/memory_governor.h"
#include "common/sim_clock.h"
#include "common/sync.h"
#include "fs/filesystem.h"
#include "metastore/catalog.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "storage/acid.h"
#include "storage/chunk_provider.h"

namespace hive {

class Operator;
using OperatorPtr = std::unique_ptr<Operator>;

/// Execution-runtime mode, standing in for the task compilers the paper
/// describes (Section 2): MapReduce materializes every stage boundary and
/// pays container start-up per stage; Tez runs the whole DAG with one
/// container allocation; LLAP adds persistent executors (no start-up cost)
/// and the data cache.
enum class RuntimeMode { kMapReduce, kTez, kLlap };

/// Runtime statistics captured per plan node (keyed by node digest); feeds
/// query re-optimization (Section 4.2).
struct RuntimeStats {
  Mutex mu{"runtime_stats.mu"};
  std::map<std::string, int64_t> rows_produced HIVE_GUARDED_BY(mu);

  // --- fault-tolerance counters (task attempts, Section 5.2 robustness) ---
  /// Task attempts started (morsel reads and vertex runs; >= tasks run).
  std::atomic<int64_t> task_attempts{0};
  /// Attempts that were retries of a transient failure.
  std::atomic<int64_t> task_retries{0};
  /// Speculative duplicate attempts launched against stragglers.
  std::atomic<int64_t> speculative_tasks{0};
  /// Speculative attempts that finished ahead of the original.
  std::atomic<int64_t> speculative_wins{0};

  /// Accumulates: a node executed as several parallel fragments records one
  /// partial count per fragment, and re-optimization needs their sum.
  void Record(const std::string& digest, int64_t rows) {
    MutexLock lock(&mu);
    rows_produced[digest] += rows;
  }
};

/// Per-query execution context threaded through all operators.
struct ExecContext {
  FileSystem* fs = nullptr;
  Catalog* catalog = nullptr;
  const Config* config = nullptr;
  /// Charged with modeled cluster latencies (container start-up, shuffle).
  SimClock* clock = nullptr;
  /// Chunk provider (LLAP cache when enabled, direct otherwise).
  ChunkProvider* chunks = nullptr;
  /// Resolves the snapshot for a table ("db.table") at query start.
  std::function<ValidWriteIdList(const std::string&)> snapshot_for;
  /// Compiles a subplan into an operator (semijoin reducer build sides).
  std::function<Result<OperatorPtr>(const std::shared_ptr<struct RelNode>&)>
      compile_subplan;
  /// Creates scan operators for storage-handler tables (federation).
  std::function<Result<OperatorPtr>(const struct RelNode&)> external_scan_factory;
  /// Runtime stats sink (may be null).
  RuntimeStats* runtime_stats = nullptr;
  /// Per-query profile: when set, the compiler wraps every operator in a
  /// span recorder and attaches the plan's span tree here (EXPLAIN ANALYZE
  /// and QueryResult::profile()). May be null (DML subplans, MV refresh).
  obs::QueryProfile* profile = nullptr;
  /// Engine-wide metrics registry (morsel counters/histograms land here);
  /// may be null in unit tests that build contexts by hand.
  obs::MetricsRegistry* metrics = nullptr;
  RuntimeMode mode = RuntimeMode::kTez;

  /// Fans an intra-query worker fragment out to the persistent executor pool
  /// (morsel-driven parallel pipelines). Null = no executor pool; workers
  /// then run inline on the coordinating thread.
  std::function<std::future<Status>(std::function<Status()>)> submit_worker;
  /// I/O elevator hook: asynchronously reads + decodes a column chunk into
  /// the shared cache so it is warm by the time a worker claims the morsel.
  std::function<void(std::shared_ptr<CofReader>, size_t, size_t)> prefetch_chunk;
  /// Upper bound on worker threads a single parallel pipeline may use.
  int max_parallel_workers = 1;
  /// Abort flag for workload-manager KILL triggers.
  std::shared_ptr<std::atomic<bool>> cancelled;
  /// Why `cancelled` was raised (trigger name / deadline); shared with the
  /// workload manager's QueryHandle. May be null (no reason tracking).
  std::shared_ptr<KillReason> kill_reason;
  /// Query-start timestamps arming the query.timeout.ms deadline; the
  /// elapsed budget counts wall time plus charged virtual time so modeled
  /// cluster latency (container start-up, injected faults) consumes it too.
  int64_t deadline_wall_start_us = 0;
  int64_t deadline_virt_start_us = 0;
  bool deadline_armed = false;

  /// Maximum rows a hash-join build side may hold before the operator
  /// fails with an ExecError — the trigger for re-optimization.
  int64_t join_build_row_limit = INT64_MAX;

  /// Per-query memory accounting (process governor + query share) blocking
  /// operators draw reservations from. Null (hand-built contexts, DML
  /// subplans) means unlimited — no reservation is ever denied.
  QueryMemory* query_memory = nullptr;
  /// This query's spill directory (unique per query, cleaned up by the
  /// server after the last attempt). Empty disables spilling.
  std::string spill_dir;

  /// True when a denied reservation may be answered by spilling: the knob
  /// is on and the context has a file system and a spill directory.
  bool CanSpill() const {
    return config && config->spill_enabled && fs && !spill_dir.empty();
  }

  int64_t stage_counter = 0;
  uint64_t shuffle_bytes = 0;

  /// Called by blocking operators when a pipeline stage completes having
  /// materialized `bytes`. In MR mode this charges a container start-up and
  /// round-trips the shuffle data through the file system; in Tez mode the
  /// data stays pipelined in memory.
  Status OnStageBoundary(uint64_t bytes);

  /// Called once when query execution starts (container allocation).
  void OnQueryStart();

  /// Arms the query.timeout.ms deadline relative to now.
  void ArmDeadline();

  /// Interruption point, evaluated at morsel/batch boundaries: trips the
  /// query.timeout.ms deadline if its budget is exhausted, then reports any
  /// raised cancellation flag as a ResourceExhausted status naming the
  /// trigger (workload-manager rule or deadline) that killed the query.
  Status CheckInterrupted() const;

  bool IsCancelled() const { return cancelled && cancelled->load(); }
};

}  // namespace hive

#endif  // HIVE_EXEC_EXEC_CONTEXT_H_
