#ifndef HIVE_EXEC_SPILL_H_
#define HIVE_EXEC_SPILL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/column_vector.h"
#include "exec/exec_context.h"

namespace hive {

/// Spill file machinery shared by the three spill paths (grace hash join,
/// external merge sort, agg partition flush). Everything goes through the
/// context's injectable FileSystem, so the fault-injection decorator's
/// transient errors, silent corruption and torn renames exercise spill I/O
/// the same way they exercise warehouse reads.
///
/// On-disk format: a spill stream is a numbered sequence of chunk files
/// `<prefix>.c<N>`, each laid out as
///
///   "SPL1" (4 bytes) | u64 Murmur64(payload) | u32 payload_len | payload
///
/// where the payload is a run of length-prefixed records. Chunks are
/// written to `<file>.tmp` and renamed into place (a torn rename that
/// applied but lost its ack is detected by probing the destination).
/// Readers validate the checksum and report a mismatch as a *transient*
/// Corruption — the same contract as COF chunk checksums — so task-attempt
/// retries re-read, and a run lost for good is re-derived by the
/// vertex-level attempt that re-runs the whole fragment.

/// Budget-exceeded failure for an operator that cannot (or may not) spill.
Status BudgetExceededStatus(const char* op, int64_t bytes, ExecContext* ctx);

/// Hash-prefix partition routing shared by every spill path: depth d
/// consumes the d-th byte from the top of the key hash, so recursive
/// repartitioning always splits on fresh bits (bytes past the 8th reuse the
/// lowest byte; the recursion bound fires long before that matters).
inline uint32_t SpillPartitionOf(uint64_t hash, int depth, int parts) {
  int shift = 56 - 8 * (depth > 7 ? 7 : depth);
  return static_cast<uint32_t>((hash >> shift) & 0xFF) %
         static_cast<uint32_t>(parts > 0 ? parts : 1);
}

/// Process-unique id for naming spill streams. Fresh per use, so a task
/// attempt that re-derives spilled state never collides with a half-written
/// predecessor's files.
uint64_t NextSpillStreamId();

/// Bumps one of the exec.spill.* counters; no-op without a registry.
void CountSpillMetric(ExecContext* ctx, const char* name, int64_t delta);

/// Serializes a dense RowBatch (and an optional parallel array of sequence
/// numbers positioning each row in the global input order) as one record.
std::string SerializeSpillBatch(const RowBatch& batch,
                                const std::vector<uint64_t>* seqs);
/// Inverse of SerializeSpillBatch. `seqs` may be null when the stream was
/// written without sequence numbers.
Status DeserializeSpillBatch(const std::string& record, const Schema& schema,
                             RowBatch* batch, std::vector<uint64_t>* seqs);

/// Buffered writer of one spill stream. AppendRecord buffers; chunks flush
/// once the buffer crosses the chunk threshold and on Finish.
class SpillChunkWriter {
 public:
  SpillChunkWriter(ExecContext* ctx, std::string prefix);

  Status AppendRecord(const std::string& record);
  /// Flushes the tail chunk. Call exactly once, before reading the stream.
  Status Finish();

  int num_chunks() const { return num_chunks_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t num_records() const { return num_records_; }
  const std::string& prefix() const { return prefix_; }

 private:
  Status WriteChunk();

  ExecContext* ctx_;
  std::string prefix_;
  std::string buffer_;
  int num_chunks_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t num_records_ = 0;
};

/// Streaming reader over a finished spill stream: yields records in write
/// order across chunk files. Chunk reads run under the task-attempt retry
/// policy; checksum mismatches surface as transient Corruption.
class SpillChunkReader {
 public:
  SpillChunkReader(ExecContext* ctx, std::string prefix, int num_chunks);

  /// Fetches the next record. Returns false at end of stream.
  Result<bool> NextRecord(std::string* record);

 private:
  Result<std::string> ReadChunk(int index);

  ExecContext* ctx_;
  std::string prefix_;
  int num_chunks_;
  int next_chunk_ = 0;
  std::string payload_;
  size_t offset_ = 0;
};

/// Row-granular batch spiller: rows accumulate into a dense RowBatch and
/// flush as one SerializeSpillBatch record per buffered batch. The unit the
/// grace join partitions build/probe rows into and the agg flush writes
/// finalized runs through.
class SpillBatchWriter {
 public:
  SpillBatchWriter(ExecContext* ctx, std::string prefix, const Schema& schema,
                   bool with_seqs);

  Status AppendRow(const RowBatch& batch, int32_t row, uint64_t seq);
  Status AppendBatchRow(const RowBatch& dense, size_t row, uint64_t seq);
  Status Finish();

  uint64_t num_rows() const { return num_rows_; }
  uint64_t bytes_written() const { return writer_.bytes_written(); }
  int num_chunks() const { return writer_.num_chunks(); }
  const std::string& prefix() const { return writer_.prefix(); }
  const Schema& schema() const { return schema_; }

 private:
  Status MaybeFlush();
  Status FlushBuffer();

  ExecContext* ctx_;
  SpillChunkWriter writer_;
  Schema schema_;
  bool with_seqs_;
  RowBatch buffer_;
  std::vector<uint64_t> seqs_;
  size_t buffered_ = 0;
  uint64_t num_rows_ = 0;
};

/// Streaming batch reader over a SpillBatchWriter stream.
class SpillBatchReader {
 public:
  SpillBatchReader(ExecContext* ctx, const SpillBatchWriter& writer);
  SpillBatchReader(ExecContext* ctx, std::string prefix, int num_chunks,
                   const Schema& schema);

  /// Fetches the next batch (and its row sequence numbers, when present).
  /// Returns false at end of stream.
  Result<bool> NextBatch(RowBatch* batch, std::vector<uint64_t>* seqs);

 private:
  SpillChunkReader reader_;
  Schema schema_;
};

}  // namespace hive

#endif  // HIVE_EXEC_SPILL_H_
