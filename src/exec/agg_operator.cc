#include "common/hash.h"
#include "exec/operators.h"
#include "exec/vector_eval.h"
#include "optimizer/expr_eval.h"

namespace hive {

HashAggregateOperator::HashAggregateOperator(ExecContext* ctx, OperatorPtr child,
                                             std::vector<ExprPtr> keys,
                                             std::vector<AggCall> aggs, Schema schema)
    : Operator(ctx),
      child_(std::move(child)),
      keys_(std::move(keys)),
      aggs_(std::move(aggs)),
      schema_(std::move(schema)) {}

Status HashAggregateOperator::Open() { return child_->Open(); }

Status HashAggregateOperator::Consume() {
  bool done = false;
  uint64_t bytes = 0;
  for (;;) {
    HIVE_RETURN_IF_ERROR(CheckCancelled());
    HIVE_ASSIGN_OR_RETURN(RowBatch batch, child_->Next(&done));
    if (done) break;
    // Evaluate key and argument vectors once per batch.
    std::vector<ColumnVectorPtr> key_cols;
    for (const ExprPtr& k : keys_) {
      HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*k, batch));
      key_cols.push_back(std::move(col));
    }
    std::vector<ColumnVectorPtr> arg_cols(aggs_.size());
    for (size_t a = 0; a < aggs_.size(); ++a) {
      if (aggs_[a].arg) {
        HIVE_ASSIGN_OR_RETURN(arg_cols[a], EvalVector(*aggs_[a].arg, batch));
      }
    }
    for (size_t i = 0; i < batch.SelectedSize(); ++i) {
      int32_t row = batch.SelectedRow(i);
      std::vector<Value> keys;
      keys.reserve(keys_.size());
      for (const auto& col : key_cols) keys.push_back(col->GetValue(row));
      uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (const Value& v : keys) h = HashCombine(h, v.Hash());

      Group* group = nullptr;
      auto& bucket = groups_[h];
      for (Group& g : bucket) {
        bool equal = g.keys.size() == keys.size();
        for (size_t k = 0; k < keys.size() && equal; ++k)
          if (Value::Compare(g.keys[k], keys[k]) != 0) equal = false;
        if (equal) {
          group = &g;
          break;
        }
      }
      if (!group) {
        Group g;
        g.keys = keys;
        g.accs.resize(aggs_.size());
        bucket.push_back(std::move(g));
        group = &bucket.back();
        bytes += 64;
      }
      for (size_t a = 0; a < aggs_.size(); ++a) {
        const AggCall& agg = aggs_[a];
        Accumulator& acc = group->accs[a];
        Value v = arg_cols[a] ? arg_cols[a]->GetValue(row) : Value::Null();
        if (agg.arg && v.is_null()) continue;  // aggregates skip nulls
        if (agg.distinct) {
          acc.distinct.insert(v);
          continue;
        }
        acc.any = true;
        ++acc.count;
        if (agg.func == "SUM" || agg.func == "AVG") {
          if (agg.result_type.kind == TypeKind::kDouble || agg.func == "AVG") {
            acc.sum_f64 += v.AsDouble();
          }
          if (agg.result_type.kind == TypeKind::kDecimal) {
            auto cast = v.CastTo(agg.result_type);
            acc.sum_i64 += cast.ok() && !cast->is_null() ? cast->i64() : 0;
          } else if (agg.result_type.kind == TypeKind::kBigint) {
            acc.sum_i64 += v.AsInt64();
          }
        } else if (agg.func == "MIN") {
          if (acc.min.is_null() || Value::Compare(v, acc.min) < 0) acc.min = v;
        } else if (agg.func == "MAX") {
          if (acc.max.is_null() || Value::Compare(v, acc.max) > 0) acc.max = v;
        }
      }
    }
  }
  // Global aggregates produce one row even with empty input.
  if (keys_.empty() && groups_.empty()) {
    Group g;
    g.accs.resize(aggs_.size());
    groups_[0].push_back(std::move(g));
  }
  for (const auto& [h, bucket] : groups_)
    for (const Group& g : bucket) ordered_.push_back(&g);
  HIVE_RETURN_IF_ERROR(ctx_->OnStageBoundary(bytes));
  consumed_ = true;
  return Status::OK();
}

Value HashAggregateOperator::Finalize(const AggCall& agg, const Accumulator& acc) const {
  if (agg.distinct) {
    if (agg.func == "COUNT") return Value::Bigint(static_cast<int64_t>(acc.distinct.size()));
    // SUM(DISTINCT) etc.
    if (agg.func == "SUM") {
      if (agg.result_type.kind == TypeKind::kDouble) {
        double total = 0;
        for (const Value& v : acc.distinct) total += v.AsDouble();
        return Value::Double(total);
      }
      int64_t total = 0;
      bool decimal = agg.result_type.kind == TypeKind::kDecimal;
      for (const Value& v : acc.distinct) {
        if (decimal) {
          auto cast = v.CastTo(agg.result_type);
          total += cast.ok() && !cast->is_null() ? cast->i64() : 0;
        } else {
          total += v.AsInt64();
        }
      }
      return decimal ? Value::Decimal(total, agg.result_type.scale) : Value::Bigint(total);
    }
    if (acc.distinct.empty()) return Value::Null();
    if (agg.func == "MIN") return *acc.distinct.begin();
    if (agg.func == "MAX") return *acc.distinct.rbegin();
    return Value::Null();
  }
  if (agg.func == "COUNT") return Value::Bigint(acc.count);
  if (!acc.any) return Value::Null();
  if (agg.func == "SUM") {
    switch (agg.result_type.kind) {
      case TypeKind::kDouble: return Value::Double(acc.sum_f64);
      case TypeKind::kDecimal: return Value::Decimal(acc.sum_i64, agg.result_type.scale);
      default: return Value::Bigint(acc.sum_i64);
    }
  }
  if (agg.func == "AVG")
    return Value::Double(acc.sum_f64 / static_cast<double>(acc.count));
  if (agg.func == "MIN") return acc.min;
  if (agg.func == "MAX") return acc.max;
  return Value::Null();
}

Result<RowBatch> HashAggregateOperator::Next(bool* done) {
  if (!consumed_) HIVE_RETURN_IF_ERROR(Consume());
  size_t batch_size = static_cast<size_t>(ctx_->config->vector_batch_size);
  if (emit_index_ >= ordered_.size()) {
    *done = true;
    return RowBatch();
  }
  *done = false;
  RowBatch out(schema_);
  size_t end = std::min(ordered_.size(), emit_index_ + batch_size);
  for (; emit_index_ < end; ++emit_index_) {
    const Group& g = *ordered_[emit_index_];
    for (size_t k = 0; k < keys_.size(); ++k) out.column(k)->AppendValue(g.keys[k]);
    for (size_t a = 0; a < aggs_.size(); ++a)
      out.column(keys_.size() + a)->AppendValue(Finalize(aggs_[a], g.accs[a]));
  }
  out.set_num_rows(out.num_columns() ? out.column(0)->size() : 0);
  rows_produced_ += static_cast<int64_t>(out.num_rows());
  return out;
}

}  // namespace hive
