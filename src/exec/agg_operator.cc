#include <algorithm>

#include "common/hash.h"
#include "exec/operators.h"
#include "exec/vector_eval.h"
#include "optimizer/expr_eval.h"

namespace hive {

namespace {

/// HashKeys seed (= the combined hash of a zero-column key set).
constexpr uint64_t kHashSeed = 0x9e3779b97f4a7c15ULL;

/// Approximate heap overhead of one unordered_set node (hash + next pointer
/// + allocator header).
constexpr uint64_t kDistinctNodeBytes = 32;

}  // namespace

// --- GroupedAggState ---

GroupedAggState::GroupedAggState(const std::vector<ExprPtr>* keys,
                                 const std::vector<AggCall>* aggs)
    : keys_(keys), aggs_(aggs) {
  index_.Reset(0);
}

uint64_t GroupedAggState::ValueBytes(const Value& v) {
  uint64_t bytes = sizeof(Value);
  if (v.kind() == TypeKind::kString) bytes += v.str().capacity();
  return bytes;
}

uint64_t GroupedAggState::GroupPayloadBytes(const Group& g) {
  uint64_t bytes = g.keys.capacity() * sizeof(Value) +
                   g.accs.capacity() * sizeof(Accumulator);
  for (const Value& k : g.keys)
    if (k.kind() == TypeKind::kString) bytes += k.str().capacity();
  for (const Accumulator& acc : g.accs)
    for (const Value& v : acc.distinct) bytes += kDistinctNodeBytes + ValueBytes(v);
  return bytes;
}

uint64_t GroupedAggState::approx_bytes() const {
  return index_.ApproxBytes() + groups_.capacity() * sizeof(Group) +
         payload_bytes_;
}

uint32_t GroupedAggState::CreateGroup(uint64_t hash, std::vector<Value>&& keys,
                                      uint64_t seq) {
  Group g;
  g.keys = std::move(keys);
  g.accs.resize(aggs_->size());
  g.first_seq = seq;
  g.hash = hash;
  uint32_t ordinal = static_cast<uint32_t>(groups_.size());
  payload_bytes_ += GroupPayloadBytes(g);
  groups_.push_back(std::move(g));
  index_.Insert(hash, static_cast<int32_t>(ordinal));
  return ordinal;
}

bool GroupedAggState::GroupMatchesRow(const Group& g,
                                      const std::vector<ColumnVectorPtr>& key_cols,
                                      int32_t row) const {
  for (size_t k = 0; k < key_cols.size(); ++k)
    if (Value::Compare(g.keys[k],
                       key_cols[k]->GetValue(static_cast<size_t>(row))) != 0)
      return false;
  return true;
}

uint32_t GroupedAggState::FindOrCreate(uint64_t hash, std::vector<Value>&& keys,
                                       uint64_t seq, bool* created) {
  *created = false;
  for (int32_t e = index_.Find(hash); e != FlatHashIndex::kInvalid;
       e = index_.NextOf(e)) {
    const Group& g = groups_[static_cast<size_t>(index_.PayloadOf(e))];
    bool equal = g.keys.size() == keys.size();
    for (size_t k = 0; k < keys.size() && equal; ++k)
      if (Value::Compare(g.keys[k], keys[k]) != 0) equal = false;
    if (equal) return static_cast<uint32_t>(index_.PayloadOf(e));
  }
  *created = true;
  return CreateGroup(hash, std::move(keys), seq);
}

Status GroupedAggState::Consume(const RowBatch& batch, uint64_t seq_base) {
  // Evaluate key and argument vectors once per batch, then hash the key
  // columns column-wise — no per-row boxed key vector on the lookup path
  // (keys box once, when a group is first created).
  std::vector<ColumnVectorPtr> key_cols;
  for (const ExprPtr& k : *keys_) {
    HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*k, batch));
    key_cols.push_back(std::move(col));
  }
  std::vector<uint64_t> hashes;
  HashKeyColumns(key_cols, batch.num_rows(), &hashes, nullptr);
  std::vector<ColumnVectorPtr> arg_cols(aggs_->size());
  for (size_t a = 0; a < aggs_->size(); ++a) {
    if ((*aggs_)[a].arg) {
      HIVE_ASSIGN_OR_RETURN(arg_cols[a], EvalVector(*(*aggs_)[a].arg, batch));
    }
  }
  for (size_t i = 0; i < batch.SelectedSize(); ++i) {
    int32_t row = batch.SelectedRow(i);
    uint64_t h = hashes[static_cast<size_t>(row)];

    // Chain walk over equal-hash groups; key comparison resolves collisions.
    uint32_t ordinal = UINT32_MAX;
    for (int32_t e = index_.Find(h); e != FlatHashIndex::kInvalid;
         e = index_.NextOf(e)) {
      uint32_t cand = static_cast<uint32_t>(index_.PayloadOf(e));
      if (GroupMatchesRow(groups_[cand], key_cols, row)) {
        ordinal = cand;
        break;
      }
    }
    if (ordinal == UINT32_MAX) {
      std::vector<Value> keys;
      keys.reserve(keys_->size());
      for (const auto& col : key_cols)
        keys.push_back(col->GetValue(static_cast<size_t>(row)));
      ordinal = CreateGroup(h, std::move(keys), seq_base + i);
    }
    Group& group = groups_[ordinal];
    for (size_t a = 0; a < aggs_->size(); ++a) {
      const AggCall& agg = (*aggs_)[a];
      Accumulator& acc = group.accs[a];
      Value v = arg_cols[a] ? arg_cols[a]->GetValue(static_cast<size_t>(row))
                            : Value::Null();
      if (agg.arg && v.is_null()) continue;  // aggregates skip nulls
      if (agg.distinct) {
        auto inserted = acc.distinct.insert(v);
        if (inserted.second)
          payload_bytes_ += kDistinctNodeBytes + ValueBytes(*inserted.first);
        continue;
      }
      acc.any = true;
      ++acc.count;
      if (agg.func == "SUM" || agg.func == "AVG") {
        if (agg.result_type.kind == TypeKind::kDouble || agg.func == "AVG") {
          acc.sum_f64 += v.AsDouble();
        }
        if (agg.result_type.kind == TypeKind::kDecimal) {
          auto cast = v.CastTo(agg.result_type);
          acc.sum_i64 += cast.ok() && !cast->is_null() ? cast->i64() : 0;
        } else if (agg.result_type.kind == TypeKind::kBigint) {
          acc.sum_i64 += v.AsInt64();
        }
      } else if (agg.func == "MIN") {
        if (acc.min.is_null() || Value::Compare(v, acc.min) < 0) acc.min = v;
      } else if (agg.func == "MAX") {
        if (acc.max.is_null() || Value::Compare(v, acc.max) > 0) acc.max = v;
      }
    }
  }
  return Status::OK();
}

void GroupedAggState::MergeAccumulator(Accumulator* into, Accumulator&& from) {
  into->count += from.count;
  into->any = into->any || from.any;
  into->sum_i64 += from.sum_i64;
  into->sum_f64 += from.sum_f64;
  if (!from.min.is_null() &&
      (into->min.is_null() || Value::Compare(from.min, into->min) < 0))
    into->min = std::move(from.min);
  if (!from.max.is_null() &&
      (into->max.is_null() || Value::Compare(from.max, into->max) > 0))
    into->max = std::move(from.max);
  // Move nodes across; only elements new to `into` count toward payload.
  for (auto it = from.distinct.begin(); it != from.distinct.end();) {
    auto node = from.distinct.extract(it++);
    uint64_t bytes = kDistinctNodeBytes + ValueBytes(node.value());
    auto res = into->distinct.insert(std::move(node));
    if (res.inserted) payload_bytes_ += bytes;
  }
}

void GroupedAggState::Merge(GroupedAggState&& other) {
  for (Group& g : other.groups_) {
    bool created = false;
    std::vector<Value> keys = g.keys;
    uint32_t ordinal = FindOrCreate(g.hash, std::move(keys), g.first_seq, &created);
    Group& mine = groups_[ordinal];
    if (created) {
      // Swap in the adopted accumulators; CreateGroup counted empty ones.
      payload_bytes_ -= mine.accs.capacity() * sizeof(Accumulator);
      mine.accs = std::move(g.accs);
      payload_bytes_ += mine.accs.capacity() * sizeof(Accumulator);
      for (const Accumulator& acc : mine.accs)
        for (const Value& v : acc.distinct)
          payload_bytes_ += kDistinctNodeBytes + ValueBytes(v);
      continue;
    }
    mine.first_seq = std::min(mine.first_seq, g.first_seq);
    for (size_t a = 0; a < mine.accs.size(); ++a)
      MergeAccumulator(&mine.accs[a], std::move(g.accs[a]));
  }
}

void GroupedAggState::Seal() {
  // Global aggregates produce one row even with empty input.
  if (keys_->empty() && groups_.empty())
    CreateGroup(kHashSeed, std::vector<Value>(), 0);
  ordered_.clear();
  ordered_.reserve(groups_.size());
  for (uint32_t i = 0; i < groups_.size(); ++i) ordered_.push_back(i);
  // First-seen input order: deterministic however rows were partitioned.
  std::sort(ordered_.begin(), ordered_.end(), [this](uint32_t a, uint32_t b) {
    return groups_[a].first_seq < groups_[b].first_seq;
  });
}

Value GroupedAggState::Finalize(const AggCall& agg, const Accumulator& acc) const {
  if (agg.distinct) {
    if (agg.func == "COUNT") return Value::Bigint(static_cast<int64_t>(acc.distinct.size()));
    // SUM(DISTINCT) etc. The hash set iterates in an order that depends on
    // insertion history, so any order-sensitive fold sorts first.
    if (agg.func == "SUM") {
      if (agg.result_type.kind == TypeKind::kDouble) {
        // FP addition is not associative: sum in sorted order so the result
        // is identical at any worker count / merge order.
        std::vector<const Value*> sorted;
        sorted.reserve(acc.distinct.size());
        for (const Value& v : acc.distinct) sorted.push_back(&v);
        std::sort(sorted.begin(), sorted.end(), [](const Value* a, const Value* b) {
          return Value::Compare(*a, *b) < 0;
        });
        double total = 0;
        for (const Value* v : sorted) total += v->AsDouble();
        return Value::Double(total);
      }
      int64_t total = 0;  // integer addition commutes; no sort needed
      bool decimal = agg.result_type.kind == TypeKind::kDecimal;
      for (const Value& v : acc.distinct) {
        if (decimal) {
          auto cast = v.CastTo(agg.result_type);
          total += cast.ok() && !cast->is_null() ? cast->i64() : 0;
        } else {
          total += v.AsInt64();
        }
      }
      return decimal ? Value::Decimal(total, agg.result_type.scale) : Value::Bigint(total);
    }
    if (acc.distinct.empty()) return Value::Null();
    if (agg.func == "MIN" || agg.func == "MAX") {
      const Value* best = nullptr;
      bool want_min = agg.func == "MIN";
      for (const Value& v : acc.distinct) {
        if (!best || (want_min ? Value::Compare(v, *best) < 0
                               : Value::Compare(v, *best) > 0))
          best = &v;
      }
      return *best;
    }
    return Value::Null();
  }
  if (agg.func == "COUNT") return Value::Bigint(acc.count);
  if (!acc.any) return Value::Null();
  if (agg.func == "SUM") {
    switch (agg.result_type.kind) {
      case TypeKind::kDouble: return Value::Double(acc.sum_f64);
      case TypeKind::kDecimal: return Value::Decimal(acc.sum_i64, agg.result_type.scale);
      default: return Value::Bigint(acc.sum_i64);
    }
  }
  if (agg.func == "AVG")
    return Value::Double(acc.sum_f64 / static_cast<double>(acc.count));
  if (agg.func == "MIN") return acc.min;
  if (agg.func == "MAX") return acc.max;
  return Value::Null();
}

Result<RowBatch> GroupedAggState::Emit(size_t begin, size_t end,
                                       const Schema& schema) const {
  RowBatch out(schema);
  for (size_t i = begin; i < end && i < ordered_.size(); ++i) {
    const Group& g = groups_[ordered_[i]];
    for (size_t k = 0; k < keys_->size(); ++k) out.column(k)->AppendValue(g.keys[k]);
    for (size_t a = 0; a < aggs_->size(); ++a)
      out.column(keys_->size() + a)->AppendValue(Finalize((*aggs_)[a], g.accs[a]));
  }
  out.set_num_rows(out.num_columns() ? out.column(0)->size() : 0);
  return out;
}

// --- HashAggregateOperator ---

HashAggregateOperator::HashAggregateOperator(ExecContext* ctx, OperatorPtr child,
                                             std::vector<ExprPtr> keys,
                                             std::vector<AggCall> aggs, Schema schema)
    : Operator(ctx),
      child_(std::move(child)),
      keys_(std::move(keys)),
      aggs_(std::move(aggs)),
      schema_(std::move(schema)),
      state_(&keys_, &aggs_) {}

Status HashAggregateOperator::Open() { return child_->Open(); }

Status HashAggregateOperator::Consume() {
  bool done = false;
  uint64_t seq = 0;
  for (;;) {
    HIVE_RETURN_IF_ERROR(CheckCancelled());
    HIVE_ASSIGN_OR_RETURN(RowBatch batch, child_->Next(&done));
    if (done) break;
    HIVE_RETURN_IF_ERROR(state_.Consume(batch, seq));
    seq += batch.SelectedSize();
  }
  state_.Seal();
  HIVE_RETURN_IF_ERROR(ctx_->OnStageBoundary(state_.approx_bytes()));
  consumed_ = true;
  return Status::OK();
}

Result<RowBatch> HashAggregateOperator::Next(bool* done) {
  if (!consumed_) HIVE_RETURN_IF_ERROR(Consume());
  size_t batch_size = static_cast<size_t>(ctx_->config->vector_batch_size);
  if (emit_index_ >= state_.num_groups()) {
    *done = true;
    return RowBatch();
  }
  *done = false;
  size_t end = std::min(state_.num_groups(), emit_index_ + batch_size);
  HIVE_ASSIGN_OR_RETURN(RowBatch out, state_.Emit(emit_index_, end, schema_));
  emit_index_ = end;
  rows_produced_ += static_cast<int64_t>(out.num_rows());
  return out;
}

}  // namespace hive
