#include <algorithm>

#include "common/hash.h"
#include "exec/operators.h"
#include "exec/vector_eval.h"
#include "optimizer/expr_eval.h"

namespace hive {

// --- GroupedAggState ---

GroupedAggState::GroupedAggState(const std::vector<ExprPtr>* keys,
                                 const std::vector<AggCall>* aggs)
    : keys_(keys), aggs_(aggs) {}

GroupedAggState::Group* GroupedAggState::FindOrCreate(uint64_t hash,
                                                      std::vector<Value>&& keys,
                                                      uint64_t seq, bool* created) {
  *created = false;
  auto& bucket = groups_[hash];
  for (Group& g : bucket) {
    bool equal = g.keys.size() == keys.size();
    for (size_t k = 0; k < keys.size() && equal; ++k)
      if (Value::Compare(g.keys[k], keys[k]) != 0) equal = false;
    if (equal) return &g;
  }
  Group g;
  g.keys = std::move(keys);
  g.accs.resize(aggs_->size());
  g.first_seq = seq;
  bucket.push_back(std::move(g));
  ++groups_created_;
  *created = true;
  return &bucket.back();
}

Status GroupedAggState::Consume(const RowBatch& batch, uint64_t seq_base) {
  // Evaluate key and argument vectors once per batch.
  std::vector<ColumnVectorPtr> key_cols;
  for (const ExprPtr& k : *keys_) {
    HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*k, batch));
    key_cols.push_back(std::move(col));
  }
  std::vector<ColumnVectorPtr> arg_cols(aggs_->size());
  for (size_t a = 0; a < aggs_->size(); ++a) {
    if ((*aggs_)[a].arg) {
      HIVE_ASSIGN_OR_RETURN(arg_cols[a], EvalVector(*(*aggs_)[a].arg, batch));
    }
  }
  for (size_t i = 0; i < batch.SelectedSize(); ++i) {
    int32_t row = batch.SelectedRow(i);
    std::vector<Value> keys;
    keys.reserve(keys_->size());
    for (const auto& col : key_cols) keys.push_back(col->GetValue(row));
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : keys) h = HashCombine(h, v.Hash());

    bool created = false;
    Group* group = FindOrCreate(h, std::move(keys), seq_base + i, &created);
    for (size_t a = 0; a < aggs_->size(); ++a) {
      const AggCall& agg = (*aggs_)[a];
      Accumulator& acc = group->accs[a];
      Value v = arg_cols[a] ? arg_cols[a]->GetValue(row) : Value::Null();
      if (agg.arg && v.is_null()) continue;  // aggregates skip nulls
      if (agg.distinct) {
        acc.distinct.insert(v);
        continue;
      }
      acc.any = true;
      ++acc.count;
      if (agg.func == "SUM" || agg.func == "AVG") {
        if (agg.result_type.kind == TypeKind::kDouble || agg.func == "AVG") {
          acc.sum_f64 += v.AsDouble();
        }
        if (agg.result_type.kind == TypeKind::kDecimal) {
          auto cast = v.CastTo(agg.result_type);
          acc.sum_i64 += cast.ok() && !cast->is_null() ? cast->i64() : 0;
        } else if (agg.result_type.kind == TypeKind::kBigint) {
          acc.sum_i64 += v.AsInt64();
        }
      } else if (agg.func == "MIN") {
        if (acc.min.is_null() || Value::Compare(v, acc.min) < 0) acc.min = v;
      } else if (agg.func == "MAX") {
        if (acc.max.is_null() || Value::Compare(v, acc.max) > 0) acc.max = v;
      }
    }
  }
  return Status::OK();
}

void GroupedAggState::MergeAccumulator(Accumulator* into, Accumulator&& from) {
  into->count += from.count;
  into->any = into->any || from.any;
  into->sum_i64 += from.sum_i64;
  into->sum_f64 += from.sum_f64;
  if (!from.min.is_null() &&
      (into->min.is_null() || Value::Compare(from.min, into->min) < 0))
    into->min = std::move(from.min);
  if (!from.max.is_null() &&
      (into->max.is_null() || Value::Compare(from.max, into->max) > 0))
    into->max = std::move(from.max);
  into->distinct.merge(from.distinct);
}

void GroupedAggState::Merge(GroupedAggState&& other) {
  for (auto& [hash, bucket] : other.groups_) {
    for (Group& g : bucket) {
      bool created = false;
      std::vector<Value> keys = g.keys;
      Group* mine = FindOrCreate(hash, std::move(keys), g.first_seq, &created);
      if (created) {
        mine->accs = std::move(g.accs);
        continue;
      }
      mine->first_seq = std::min(mine->first_seq, g.first_seq);
      for (size_t a = 0; a < mine->accs.size(); ++a)
        MergeAccumulator(&mine->accs[a], std::move(g.accs[a]));
    }
  }
}

void GroupedAggState::Seal() {
  // Global aggregates produce one row even with empty input.
  if (keys_->empty() && groups_.empty()) {
    Group g;
    g.accs.resize(aggs_->size());
    groups_[0].push_back(std::move(g));
    ++groups_created_;
  }
  ordered_.clear();
  for (const auto& [h, bucket] : groups_)
    for (const Group& g : bucket) ordered_.push_back(&g);
  // First-seen input order: deterministic however rows were partitioned.
  std::sort(ordered_.begin(), ordered_.end(),
            [](const Group* a, const Group* b) { return a->first_seq < b->first_seq; });
}

Value GroupedAggState::Finalize(const AggCall& agg, const Accumulator& acc) const {
  if (agg.distinct) {
    if (agg.func == "COUNT") return Value::Bigint(static_cast<int64_t>(acc.distinct.size()));
    // SUM(DISTINCT) etc.
    if (agg.func == "SUM") {
      if (agg.result_type.kind == TypeKind::kDouble) {
        double total = 0;
        for (const Value& v : acc.distinct) total += v.AsDouble();
        return Value::Double(total);
      }
      int64_t total = 0;
      bool decimal = agg.result_type.kind == TypeKind::kDecimal;
      for (const Value& v : acc.distinct) {
        if (decimal) {
          auto cast = v.CastTo(agg.result_type);
          total += cast.ok() && !cast->is_null() ? cast->i64() : 0;
        } else {
          total += v.AsInt64();
        }
      }
      return decimal ? Value::Decimal(total, agg.result_type.scale) : Value::Bigint(total);
    }
    if (acc.distinct.empty()) return Value::Null();
    if (agg.func == "MIN") return *acc.distinct.begin();
    if (agg.func == "MAX") return *acc.distinct.rbegin();
    return Value::Null();
  }
  if (agg.func == "COUNT") return Value::Bigint(acc.count);
  if (!acc.any) return Value::Null();
  if (agg.func == "SUM") {
    switch (agg.result_type.kind) {
      case TypeKind::kDouble: return Value::Double(acc.sum_f64);
      case TypeKind::kDecimal: return Value::Decimal(acc.sum_i64, agg.result_type.scale);
      default: return Value::Bigint(acc.sum_i64);
    }
  }
  if (agg.func == "AVG")
    return Value::Double(acc.sum_f64 / static_cast<double>(acc.count));
  if (agg.func == "MIN") return acc.min;
  if (agg.func == "MAX") return acc.max;
  return Value::Null();
}

Result<RowBatch> GroupedAggState::Emit(size_t begin, size_t end,
                                       const Schema& schema) const {
  RowBatch out(schema);
  for (size_t i = begin; i < end && i < ordered_.size(); ++i) {
    const Group& g = *ordered_[i];
    for (size_t k = 0; k < keys_->size(); ++k) out.column(k)->AppendValue(g.keys[k]);
    for (size_t a = 0; a < aggs_->size(); ++a)
      out.column(keys_->size() + a)->AppendValue(Finalize((*aggs_)[a], g.accs[a]));
  }
  out.set_num_rows(out.num_columns() ? out.column(0)->size() : 0);
  return out;
}

// --- HashAggregateOperator ---

HashAggregateOperator::HashAggregateOperator(ExecContext* ctx, OperatorPtr child,
                                             std::vector<ExprPtr> keys,
                                             std::vector<AggCall> aggs, Schema schema)
    : Operator(ctx),
      child_(std::move(child)),
      keys_(std::move(keys)),
      aggs_(std::move(aggs)),
      schema_(std::move(schema)),
      state_(&keys_, &aggs_) {}

Status HashAggregateOperator::Open() { return child_->Open(); }

Status HashAggregateOperator::Consume() {
  bool done = false;
  uint64_t seq = 0;
  for (;;) {
    HIVE_RETURN_IF_ERROR(CheckCancelled());
    HIVE_ASSIGN_OR_RETURN(RowBatch batch, child_->Next(&done));
    if (done) break;
    HIVE_RETURN_IF_ERROR(state_.Consume(batch, seq));
    seq += batch.SelectedSize();
  }
  state_.Seal();
  HIVE_RETURN_IF_ERROR(ctx_->OnStageBoundary(state_.approx_bytes()));
  consumed_ = true;
  return Status::OK();
}

Result<RowBatch> HashAggregateOperator::Next(bool* done) {
  if (!consumed_) HIVE_RETURN_IF_ERROR(Consume());
  size_t batch_size = static_cast<size_t>(ctx_->config->vector_batch_size);
  if (emit_index_ >= state_.num_groups()) {
    *done = true;
    return RowBatch();
  }
  *done = false;
  size_t end = std::min(state_.num_groups(), emit_index_ + batch_size);
  HIVE_ASSIGN_OR_RETURN(RowBatch out, state_.Emit(emit_index_, end, schema_));
  emit_index_ = end;
  rows_produced_ += static_cast<int64_t>(out.num_rows());
  return out;
}

}  // namespace hive
