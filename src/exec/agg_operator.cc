#include <algorithm>

#include "common/hash.h"
#include "common/serde.h"
#include "exec/operators.h"
#include "exec/vector_eval.h"
#include "optimizer/expr_eval.h"
#include "storage/cof.h"
#include "obs/metric_names.h"

namespace hive {

namespace {

/// HashKeys seed (= the combined hash of a zero-column key set).
constexpr uint64_t kHashSeed = 0x9e3779b97f4a7c15ULL;

/// Approximate heap overhead of one unordered_set node (hash + next pointer
/// + allocator header).
constexpr uint64_t kDistinctNodeBytes = 32;

}  // namespace

// --- GroupedAggState ---

GroupedAggState::GroupedAggState(const std::vector<ExprPtr>* keys,
                                 const std::vector<AggCall>* aggs)
    : keys_(keys), aggs_(aggs) {
  index_.Reset(0);
}

uint64_t GroupedAggState::ValueBytes(const Value& v) {
  uint64_t bytes = sizeof(Value);
  if (v.kind() == TypeKind::kString) bytes += v.str().capacity();
  return bytes;
}

uint64_t GroupedAggState::GroupPayloadBytes(const Group& g) {
  uint64_t bytes = g.keys.capacity() * sizeof(Value) +
                   g.accs.capacity() * sizeof(Accumulator);
  for (const Value& k : g.keys)
    if (k.kind() == TypeKind::kString) bytes += k.str().capacity();
  for (const Accumulator& acc : g.accs)
    for (const Value& v : acc.distinct) bytes += kDistinctNodeBytes + ValueBytes(v);
  return bytes;
}

uint64_t GroupedAggState::approx_bytes() const {
  return index_.ApproxBytes() + groups_.capacity() * sizeof(Group) +
         payload_bytes_;
}

uint32_t GroupedAggState::CreateGroup(uint64_t hash, std::vector<Value>&& keys,
                                      uint64_t seq) {
  Group g;
  g.keys = std::move(keys);
  g.accs.resize(aggs_->size());
  g.first_seq = seq;
  g.hash = hash;
  uint32_t ordinal = static_cast<uint32_t>(groups_.size());
  payload_bytes_ += GroupPayloadBytes(g);
  groups_.push_back(std::move(g));
  index_.Insert(hash, static_cast<int32_t>(ordinal));
  return ordinal;
}

bool GroupedAggState::GroupMatchesRow(const Group& g,
                                      const std::vector<ColumnVectorPtr>& key_cols,
                                      int32_t row) const {
  for (size_t k = 0; k < key_cols.size(); ++k)
    if (Value::Compare(g.keys[k],
                       key_cols[k]->GetValue(static_cast<size_t>(row))) != 0)
      return false;
  return true;
}

uint32_t GroupedAggState::FindOrCreate(uint64_t hash, std::vector<Value>&& keys,
                                       uint64_t seq, bool* created) {
  *created = false;
  for (int32_t e = index_.Find(hash); e != FlatHashIndex::kInvalid;
       e = index_.NextOf(e)) {
    const Group& g = groups_[static_cast<size_t>(index_.PayloadOf(e))];
    bool equal = g.keys.size() == keys.size();
    for (size_t k = 0; k < keys.size() && equal; ++k)
      if (Value::Compare(g.keys[k], keys[k]) != 0) equal = false;
    if (equal) return static_cast<uint32_t>(index_.PayloadOf(e));
  }
  *created = true;
  return CreateGroup(hash, std::move(keys), seq);
}

Status GroupedAggState::Consume(const RowBatch& batch, uint64_t seq_base) {
  // Evaluate key and argument vectors once per batch, then hash the key
  // columns column-wise — no per-row boxed key vector on the lookup path
  // (keys box once, when a group is first created).
  std::vector<ColumnVectorPtr> key_cols;
  for (const ExprPtr& k : *keys_) {
    HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*k, batch));
    key_cols.push_back(std::move(col));
  }
  std::vector<uint64_t> hashes;
  HashKeyColumns(key_cols, batch.num_rows(), &hashes, nullptr);
  std::vector<ColumnVectorPtr> arg_cols(aggs_->size());
  for (size_t a = 0; a < aggs_->size(); ++a) {
    if ((*aggs_)[a].arg) {
      HIVE_ASSIGN_OR_RETURN(arg_cols[a], EvalVector(*(*aggs_)[a].arg, batch));
    }
  }
  for (size_t i = 0; i < batch.SelectedSize(); ++i) {
    int32_t row = batch.SelectedRow(i);
    uint64_t h = hashes[static_cast<size_t>(row)];

    // Chain walk over equal-hash groups; key comparison resolves collisions.
    uint32_t ordinal = UINT32_MAX;
    for (int32_t e = index_.Find(h); e != FlatHashIndex::kInvalid;
         e = index_.NextOf(e)) {
      uint32_t cand = static_cast<uint32_t>(index_.PayloadOf(e));
      if (GroupMatchesRow(groups_[cand], key_cols, row)) {
        ordinal = cand;
        break;
      }
    }
    if (ordinal == UINT32_MAX) {
      std::vector<Value> keys;
      keys.reserve(keys_->size());
      for (const auto& col : key_cols)
        keys.push_back(col->GetValue(static_cast<size_t>(row)));
      ordinal = CreateGroup(h, std::move(keys), seq_base + i);
    }
    Group& group = groups_[ordinal];
    for (size_t a = 0; a < aggs_->size(); ++a) {
      const AggCall& agg = (*aggs_)[a];
      Accumulator& acc = group.accs[a];
      Value v = arg_cols[a] ? arg_cols[a]->GetValue(static_cast<size_t>(row))
                            : Value::Null();
      if (agg.arg && v.is_null()) continue;  // aggregates skip nulls
      if (agg.distinct) {
        auto inserted = acc.distinct.insert(v);
        if (inserted.second)
          payload_bytes_ += kDistinctNodeBytes + ValueBytes(*inserted.first);
        continue;
      }
      acc.any = true;
      ++acc.count;
      if (agg.func == "SUM" || agg.func == "AVG") {
        if (agg.result_type.kind == TypeKind::kDouble || agg.func == "AVG") {
          acc.sum_f64 += v.AsDouble();
        }
        if (agg.result_type.kind == TypeKind::kDecimal) {
          auto cast = v.CastTo(agg.result_type);
          acc.sum_i64 += cast.ok() && !cast->is_null() ? cast->i64() : 0;
        } else if (agg.result_type.kind == TypeKind::kBigint) {
          acc.sum_i64 += v.AsInt64();
        }
      } else if (agg.func == "MIN") {
        if (acc.min.is_null() || Value::Compare(v, acc.min) < 0) acc.min = v;
      } else if (agg.func == "MAX") {
        if (acc.max.is_null() || Value::Compare(v, acc.max) > 0) acc.max = v;
      }
    }
  }
  return Status::OK();
}

void GroupedAggState::MergeAccumulator(Accumulator* into, Accumulator&& from) {
  into->count += from.count;
  into->any = into->any || from.any;
  into->sum_i64 += from.sum_i64;
  into->sum_f64 += from.sum_f64;
  if (!from.min.is_null() &&
      (into->min.is_null() || Value::Compare(from.min, into->min) < 0))
    into->min = std::move(from.min);
  if (!from.max.is_null() &&
      (into->max.is_null() || Value::Compare(from.max, into->max) > 0))
    into->max = std::move(from.max);
  // Move nodes across; only elements new to `into` count toward payload.
  for (auto it = from.distinct.begin(); it != from.distinct.end();) {
    auto node = from.distinct.extract(it++);
    uint64_t bytes = kDistinctNodeBytes + ValueBytes(node.value());
    auto res = into->distinct.insert(std::move(node));
    if (res.inserted) payload_bytes_ += bytes;
  }
}

void GroupedAggState::Merge(GroupedAggState&& other) {
  for (Group& g : other.groups_) {
    bool created = false;
    std::vector<Value> keys = g.keys;
    uint32_t ordinal = FindOrCreate(g.hash, std::move(keys), g.first_seq, &created);
    Group& mine = groups_[ordinal];
    if (created) {
      // Swap in the adopted accumulators; CreateGroup counted empty ones.
      payload_bytes_ -= mine.accs.capacity() * sizeof(Accumulator);
      mine.accs = std::move(g.accs);
      payload_bytes_ += mine.accs.capacity() * sizeof(Accumulator);
      for (const Accumulator& acc : mine.accs)
        for (const Value& v : acc.distinct)
          payload_bytes_ += kDistinctNodeBytes + ValueBytes(v);
      continue;
    }
    mine.first_seq = std::min(mine.first_seq, g.first_seq);
    for (size_t a = 0; a < mine.accs.size(); ++a)
      MergeAccumulator(&mine.accs[a], std::move(g.accs[a]));
  }
}

std::string GroupedAggState::SerializeGroup(size_t i) const {
  const Group& g = groups_[i];
  std::string out;
  serde::PutU64(&out, g.hash);
  serde::PutU64(&out, g.first_seq);
  serde::PutU32(&out, static_cast<uint32_t>(g.keys.size()));
  for (const Value& k : g.keys) SerializeValue(&out, k);
  serde::PutU32(&out, static_cast<uint32_t>(g.accs.size()));
  for (const Accumulator& acc : g.accs) {
    serde::PutI64(&out, acc.count);
    out.push_back(acc.any ? 1 : 0);
    serde::PutI64(&out, acc.sum_i64);
    serde::PutF64(&out, acc.sum_f64);
    SerializeValue(&out, acc.min);
    SerializeValue(&out, acc.max);
    serde::PutU32(&out, static_cast<uint32_t>(acc.distinct.size()));
    // The hash set iterates in insertion-history order; sort so the record
    // bytes are deterministic however the values arrived.
    std::vector<const Value*> sorted;
    sorted.reserve(acc.distinct.size());
    for (const Value& v : acc.distinct) sorted.push_back(&v);
    std::sort(sorted.begin(), sorted.end(), [](const Value* a, const Value* b) {
      return Value::Compare(*a, *b) < 0;
    });
    for (const Value* v : sorted) SerializeValue(&out, *v);
  }
  return out;
}

Status GroupedAggState::AbsorbSerializedGroup(const std::string& record) {
  size_t offset = 0;
  uint64_t hash = 0, first_seq = 0;
  uint32_t nkeys = 0, naggs = 0;
  if (!serde::GetU64(record, &offset, &hash) ||
      !serde::GetU64(record, &offset, &first_seq) ||
      !serde::GetU32(record, &offset, &nkeys))
    return Status::Corruption("agg spill group header").MarkTransient();
  std::vector<Value> keys;
  keys.reserve(nkeys);
  for (uint32_t k = 0; k < nkeys; ++k) {
    auto v = DeserializeValue(record, &offset);
    if (!v.ok()) return Status::Corruption("agg spill group key").MarkTransient();
    keys.push_back(std::move(*v));
  }
  if (!serde::GetU32(record, &offset, &naggs) || naggs != aggs_->size())
    return Status::Corruption("agg spill accumulator count").MarkTransient();
  bool created = false;
  uint32_t ordinal = FindOrCreate(hash, std::move(keys), first_seq, &created);
  Group& mine = groups_[ordinal];
  if (!created) mine.first_seq = std::min(mine.first_seq, first_seq);
  for (uint32_t a = 0; a < naggs; ++a) {
    Accumulator acc;
    uint32_t ndistinct = 0;
    if (!serde::GetI64(record, &offset, &acc.count) || offset >= record.size())
      return Status::Corruption("agg spill accumulator").MarkTransient();
    acc.any = record[offset++] != 0;
    if (!serde::GetI64(record, &offset, &acc.sum_i64) ||
        !serde::GetF64(record, &offset, &acc.sum_f64))
      return Status::Corruption("agg spill accumulator").MarkTransient();
    auto mn = DeserializeValue(record, &offset);
    auto mx = DeserializeValue(record, &offset);
    if (!mn.ok() || !mx.ok() || !serde::GetU32(record, &offset, &ndistinct))
      return Status::Corruption("agg spill accumulator").MarkTransient();
    acc.min = std::move(*mn);
    acc.max = std::move(*mx);
    for (uint32_t d = 0; d < ndistinct; ++d) {
      auto v = DeserializeValue(record, &offset);
      if (!v.ok())
        return Status::Corruption("agg spill distinct value").MarkTransient();
      acc.distinct.insert(std::move(*v));
    }
    MergeAccumulator(&mine.accs[a], std::move(acc));
  }
  return Status::OK();
}

void GroupedAggState::Reset() {
  groups_.clear();
  groups_.shrink_to_fit();
  index_.Reset(0);
  ordered_.clear();
  payload_bytes_ = 0;
}

void GroupedAggState::Seal() {
  // Global aggregates produce one row even with empty input.
  if (keys_->empty() && groups_.empty())
    CreateGroup(kHashSeed, std::vector<Value>(), 0);
  ordered_.clear();
  ordered_.reserve(groups_.size());
  for (uint32_t i = 0; i < groups_.size(); ++i) ordered_.push_back(i);
  // First-seen input order: deterministic however rows were partitioned.
  std::sort(ordered_.begin(), ordered_.end(), [this](uint32_t a, uint32_t b) {
    return groups_[a].first_seq < groups_[b].first_seq;
  });
}

Value GroupedAggState::Finalize(const AggCall& agg, const Accumulator& acc) const {
  if (agg.distinct) {
    if (agg.func == "COUNT") return Value::Bigint(static_cast<int64_t>(acc.distinct.size()));
    // SUM(DISTINCT) etc. The hash set iterates in an order that depends on
    // insertion history, so any order-sensitive fold sorts first.
    if (agg.func == "SUM") {
      if (agg.result_type.kind == TypeKind::kDouble) {
        // FP addition is not associative: sum in sorted order so the result
        // is identical at any worker count / merge order.
        std::vector<const Value*> sorted;
        sorted.reserve(acc.distinct.size());
        for (const Value& v : acc.distinct) sorted.push_back(&v);
        std::sort(sorted.begin(), sorted.end(), [](const Value* a, const Value* b) {
          return Value::Compare(*a, *b) < 0;
        });
        double total = 0;
        for (const Value* v : sorted) total += v->AsDouble();
        return Value::Double(total);
      }
      int64_t total = 0;  // integer addition commutes; no sort needed
      bool decimal = agg.result_type.kind == TypeKind::kDecimal;
      for (const Value& v : acc.distinct) {
        if (decimal) {
          auto cast = v.CastTo(agg.result_type);
          total += cast.ok() && !cast->is_null() ? cast->i64() : 0;
        } else {
          total += v.AsInt64();
        }
      }
      return decimal ? Value::Decimal(total, agg.result_type.scale) : Value::Bigint(total);
    }
    if (acc.distinct.empty()) return Value::Null();
    if (agg.func == "MIN" || agg.func == "MAX") {
      const Value* best = nullptr;
      bool want_min = agg.func == "MIN";
      for (const Value& v : acc.distinct) {
        if (!best || (want_min ? Value::Compare(v, *best) < 0
                               : Value::Compare(v, *best) > 0))
          best = &v;
      }
      return *best;
    }
    return Value::Null();
  }
  if (agg.func == "COUNT") return Value::Bigint(acc.count);
  if (!acc.any) return Value::Null();
  if (agg.func == "SUM") {
    switch (agg.result_type.kind) {
      case TypeKind::kDouble: return Value::Double(acc.sum_f64);
      case TypeKind::kDecimal: return Value::Decimal(acc.sum_i64, agg.result_type.scale);
      default: return Value::Bigint(acc.sum_i64);
    }
  }
  if (agg.func == "AVG")
    return Value::Double(acc.sum_f64 / static_cast<double>(acc.count));
  if (agg.func == "MIN") return acc.min;
  if (agg.func == "MAX") return acc.max;
  return Value::Null();
}

Result<RowBatch> GroupedAggState::Emit(size_t begin, size_t end,
                                       const Schema& schema) const {
  RowBatch out(schema);
  for (size_t i = begin; i < end && i < ordered_.size(); ++i) {
    const Group& g = groups_[ordered_[i]];
    for (size_t k = 0; k < keys_->size(); ++k) out.column(k)->AppendValue(g.keys[k]);
    for (size_t a = 0; a < aggs_->size(); ++a)
      out.column(keys_->size() + a)->AppendValue(Finalize((*aggs_)[a], g.accs[a]));
  }
  out.set_num_rows(out.num_columns() ? out.column(0)->size() : 0);
  return out;
}

// --- AggSpillSet ---

AggSpillSet::AggSpillSet(ExecContext* ctx, std::string prefix,
                         const std::vector<ExprPtr>* keys,
                         const std::vector<AggCall>* aggs, int partitions,
                         int workers)
    : ctx_(ctx),
      prefix_(std::move(prefix)),
      keys_(keys),
      aggs_(aggs),
      partitions_(std::max(1, partitions)),
      writers_(static_cast<size_t>(std::max(1, workers))) {
  for (auto& streams : writers_)
    streams.resize(static_cast<size_t>(partitions_));
}

Status AggSpillSet::Flush(int worker, GroupedAggState* state) {
  spilled_.store(true, std::memory_order_relaxed);
  flushes_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::unique_ptr<SpillChunkWriter>>& streams =
      writers_[static_cast<size_t>(worker)];
  const size_t n = state->num_raw_groups();
  for (size_t i = 0; i < n; ++i) {
    uint32_t p = SpillPartitionOf(state->group_hash(i), 0, partitions_);
    std::unique_ptr<SpillChunkWriter>& w = streams[p];
    if (!w) {
      w = std::make_unique<SpillChunkWriter>(
          ctx_, prefix_ + ".w" + std::to_string(worker) + ".p" +
                    std::to_string(p));
      CountSpillMetric(ctx_, obs::metric::kSpillPartitions, 1);
    }
    HIVE_RETURN_IF_ERROR(w->AppendRecord(state->SerializeGroup(i)));
  }
  state->Reset();
  return Status::OK();
}

Status AggSpillSet::RefillCursor(Cursor* c) {
  c->pos = 0;
  HIVE_ASSIGN_OR_RETURN(bool more, c->reader->NextBatch(&c->batch, &c->seqs));
  if (!more) c->done = true;
  return Status::OK();
}

Status AggSpillSet::PrepareEmit(GroupedAggState* remainder, const Schema& schema) {
  out_schema_ = schema;
  for (auto& streams : writers_)
    for (std::unique_ptr<SpillChunkWriter>& w : streams)
      if (w) HIVE_RETURN_IF_ERROR(w->Finish());
  const size_t batch_rows =
      ctx_->config ? static_cast<size_t>(ctx_->config->vector_batch_size) : 1024;
  // Rebuild one hash partition at a time: a group's records always land in
  // one partition, so the transient footprint is ~1/partitions of the full
  // state. Absorption order is fixed — remainder, then each worker's chunks
  // in worker order — so the rebuild is deterministic.
  for (int p = 0; p < partitions_; ++p) {
    GroupedAggState part(keys_, aggs_);
    if (remainder) {
      const size_t n = remainder->num_raw_groups();
      for (size_t i = 0; i < n; ++i) {
        if (SpillPartitionOf(remainder->group_hash(i), 0, partitions_) !=
            static_cast<uint32_t>(p))
          continue;
        HIVE_RETURN_IF_ERROR(
            part.AbsorbSerializedGroup(remainder->SerializeGroup(i)));
      }
    }
    for (auto& streams : writers_) {
      SpillChunkWriter* w = streams[static_cast<size_t>(p)].get();
      if (!w) continue;
      SpillChunkReader reader(ctx_, w->prefix(), w->num_chunks());
      std::string record;
      for (;;) {
        HIVE_RETURN_IF_ERROR(ctx_->CheckInterrupted());
        HIVE_ASSIGN_OR_RETURN(bool more, reader.NextRecord(&record));
        if (!more) break;
        HIVE_RETURN_IF_ERROR(part.AbsorbSerializedGroup(record));
      }
    }
    if (part.num_raw_groups() == 0) continue;
    // keys_ is never empty here (scalar aggregates fail instead of spilling),
    // so Seal adds no phantom global group to non-originating partitions.
    part.Seal();
    auto run = std::make_unique<SpillBatchWriter>(
        ctx_, prefix_ + ".run" + std::to_string(p), schema, true);
    const size_t groups = part.num_groups();
    for (size_t begin = 0; begin < groups; begin += batch_rows) {
      size_t end = std::min(groups, begin + batch_rows);
      HIVE_ASSIGN_OR_RETURN(RowBatch out, part.Emit(begin, end, schema));
      for (size_t r = 0; r < out.num_rows(); ++r)
        HIVE_RETURN_IF_ERROR(
            run->AppendBatchRow(out, r, part.ordered_first_seq(begin + r)));
    }
    HIVE_RETURN_IF_ERROR(run->Finish());
    runs_.push_back(std::move(run));
  }
  cursors_.clear();
  for (std::unique_ptr<SpillBatchWriter>& run : runs_) {
    if (run->num_rows() == 0) continue;
    cursors_.emplace_back();
    Cursor& c = cursors_.back();
    c.batch = RowBatch(schema);
    c.reader = std::make_unique<SpillBatchReader>(ctx_, *run);
    HIVE_RETURN_IF_ERROR(RefillCursor(&c));
  }
  if (!cursors_.empty()) CountSpillMetric(ctx_, obs::metric::kSpillMergePasses, 1);
  return Status::OK();
}

Result<RowBatch> AggSpillSet::NextOutput(bool* done) {
  *done = false;
  const size_t limit =
      ctx_->config ? static_cast<size_t>(ctx_->config->vector_batch_size) : 1024;
  RowBatch out(out_schema_);
  size_t out_rows = 0;
  // K-way merge by first-seen sequence: each group lives in exactly one
  // partition run, and every run is ascending, so the merged stream is the
  // exact first-seen order the in-memory Seal produces.
  while (out_rows < limit) {
    Cursor* best = nullptr;
    for (Cursor& c : cursors_) {
      if (c.done) continue;
      if (!best || c.seqs[c.pos] < best->seqs[best->pos]) best = &c;
    }
    if (!best) break;
    for (size_t col = 0; col < out.num_columns(); ++col)
      out.column(col)->AppendFrom(*best->batch.column(col), best->pos);
    ++out_rows;
    ++best->pos;
    if (best->pos >= best->batch.num_rows()) HIVE_RETURN_IF_ERROR(RefillCursor(best));
  }
  out.set_num_rows(out_rows);
  if (out_rows == 0) *done = true;
  return out;
}

uint64_t AggSpillSet::bytes_spilled() const {
  uint64_t total = 0;
  for (const auto& streams : writers_)
    for (const std::unique_ptr<SpillChunkWriter>& w : streams)
      if (w) total += w->bytes_written();
  for (const std::unique_ptr<SpillBatchWriter>& r : runs_)
    total += r->bytes_written();
  return total;
}

// --- HashAggregateOperator ---

HashAggregateOperator::HashAggregateOperator(ExecContext* ctx, OperatorPtr child,
                                             std::vector<ExprPtr> keys,
                                             std::vector<AggCall> aggs, Schema schema)
    : Operator(ctx),
      child_(std::move(child)),
      keys_(std::move(keys)),
      aggs_(std::move(aggs)),
      schema_(std::move(schema)),
      state_(&keys_, &aggs_) {}

Status HashAggregateOperator::Open() { return child_->Open(); }

Status HashAggregateOperator::Consume() {
  bool done = false;
  uint64_t seq = 0;
  reservation_.Attach(ctx_->query_memory);
  for (;;) {
    HIVE_RETURN_IF_ERROR(CheckCancelled());
    HIVE_ASSIGN_OR_RETURN(RowBatch batch, child_->Next(&done));
    if (done) break;
    HIVE_RETURN_IF_ERROR(state_.Consume(batch, seq));
    seq += batch.SelectedSize();
    if (!reservation_.GrowTo(static_cast<int64_t>(state_.approx_bytes()))) {
      CountSpillMetric(ctx_, obs::metric::kSpillDeniedReservations, 1);
      // Scalar aggregates (no keys) hold a single group; spilling cannot
      // shrink them.
      if (!ctx_->CanSpill() || keys_.empty())
        return BudgetExceededStatus(
            "hash aggregate", static_cast<int64_t>(state_.approx_bytes()), ctx_);
      if (!spill_)
        spill_ = std::make_unique<AggSpillSet>(
            ctx_, ctx_->spill_dir + "/a" + std::to_string(NextSpillStreamId()),
            &keys_, &aggs_, std::max(2, ctx_->config->spill_partitions),
            /*workers=*/1);
      HIVE_RETURN_IF_ERROR(spill_->Flush(0, &state_));
      reservation_.Release();
    }
  }
  if (spill_ && spill_->spilled()) {
    HIVE_RETURN_IF_ERROR(spill_->PrepareEmit(&state_, schema_));
    state_.Reset();
    reservation_.Release();
    HIVE_RETURN_IF_ERROR(ctx_->OnStageBoundary(spill_->bytes_spilled()));
  } else {
    state_.Seal();
    HIVE_RETURN_IF_ERROR(ctx_->OnStageBoundary(state_.approx_bytes()));
  }
  consumed_ = true;
  return Status::OK();
}

Result<RowBatch> HashAggregateOperator::Next(bool* done) {
  if (!consumed_) HIVE_RETURN_IF_ERROR(Consume());
  if (spill_ && spill_->spilled()) {
    HIVE_ASSIGN_OR_RETURN(RowBatch out, spill_->NextOutput(done));
    if (!*done) rows_produced_ += static_cast<int64_t>(out.num_rows());
    return out;
  }
  size_t batch_size = static_cast<size_t>(ctx_->config->vector_batch_size);
  if (emit_index_ >= state_.num_groups()) {
    *done = true;
    return RowBatch();
  }
  *done = false;
  size_t end = std::min(state_.num_groups(), emit_index_ + batch_size);
  HIVE_ASSIGN_OR_RETURN(RowBatch out, state_.Emit(emit_index_, end, schema_));
  emit_index_ = end;
  rows_produced_ += static_cast<int64_t>(out.num_rows());
  return out;
}

Status HashAggregateOperator::Close() {
  if (profile_node_ && spill_ && spill_->spilled()) {
    std::string& d = profile_node_->detail;
    if (!d.empty()) d += ", ";
    d += "spill=agg flushes=" + std::to_string(spill_->flushes()) +
         " spill_bytes=" + std::to_string(spill_->bytes_spilled());
  }
  return child_->Close();
}

}  // namespace hive
