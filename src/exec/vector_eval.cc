#include "exec/vector_eval.h"

#include <algorithm>

#include "common/hash.h"
#include "optimizer/expr_eval.h"

namespace hive {

namespace {

/// Row-wise fallback: boxes one physical row of the batch.
std::vector<Value> BoxRow(const RowBatch& batch, size_t row) {
  std::vector<Value> out;
  out.reserve(batch.num_columns());
  for (size_t c = 0; c < batch.num_columns(); ++c)
    out.push_back(batch.column(c)->GetValue(row));
  return out;
}

Result<ColumnVectorPtr> RowWiseEval(const Expr& e, const RowBatch& batch) {
  auto out = std::make_shared<ColumnVector>(e.type);
  const size_t n = batch.num_rows();
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> row = BoxRow(batch, i);
    HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(e, &row));
    out->AppendValue(v);
  }
  return out;
}

bool IsI64Backed(const DataType& t) {
  return t.IsIntegerBacked();
}

/// Vectorized comparison kernel over i64-backed columns.
template <typename Cmp>
ColumnVectorPtr CompareI64(const ColumnVector& l, const ColumnVector& r, Cmp cmp) {
  auto out = std::make_shared<ColumnVector>(DataType::Boolean());
  const size_t n = l.size();
  out->Resize(n);
  const auto& lv = l.i64_data();
  const auto& rv = r.i64_data();
  const auto& ln = l.validity();
  const auto& rn = r.validity();
  auto& ov = out->i64_data();
  auto& on = out->validity();
  for (size_t i = 0; i < n; ++i) {
    on[i] = ln[i] & rn[i];
    ov[i] = cmp(lv[i], rv[i]) ? 1 : 0;
  }
  return out;
}

template <typename OpFn>
ColumnVectorPtr ArithI64(const ColumnVector& l, const ColumnVector& r, DataType type,
                         OpFn fn) {
  auto out = std::make_shared<ColumnVector>(type);
  const size_t n = l.size();
  out->Resize(n);
  const auto& lv = l.i64_data();
  const auto& rv = r.i64_data();
  const auto& ln = l.validity();
  const auto& rn = r.validity();
  auto& ov = out->i64_data();
  auto& on = out->validity();
  for (size_t i = 0; i < n; ++i) {
    on[i] = ln[i] & rn[i];
    ov[i] = fn(lv[i], rv[i]);
  }
  return out;
}

template <typename OpFn>
ColumnVectorPtr ArithF64(const ColumnVector& l, const ColumnVector& r, OpFn fn) {
  auto out = std::make_shared<ColumnVector>(DataType::Double());
  const size_t n = l.size();
  out->Resize(n);
  auto& ov = out->f64_data();
  auto& on = out->validity();
  const auto& ln = l.validity();
  const auto& rn = r.validity();
  auto get_l = [&](size_t i) {
    return l.type().kind == TypeKind::kDouble
               ? l.f64_data()[i]
               : static_cast<double>(l.i64_data()[i]) /
                     static_cast<double>(Pow10(l.type().scale));
  };
  auto get_r = [&](size_t i) {
    return r.type().kind == TypeKind::kDouble
               ? r.f64_data()[i]
               : static_cast<double>(r.i64_data()[i]) /
                     static_cast<double>(Pow10(r.type().scale));
  };
  for (size_t i = 0; i < n; ++i) {
    on[i] = ln[i] & rn[i];
    ov[i] = fn(get_l(i), get_r(i));
  }
  return out;
}

/// Broadcast a literal to a vector of length n.
ColumnVectorPtr Broadcast(const Value& v, DataType type, size_t n) {
  auto out = std::make_shared<ColumnVector>(type);
  out->Resize(n);
  if (v.is_null()) {
    std::fill(out->validity().begin(), out->validity().end(), 0);
    return out;
  }
  std::fill(out->validity().begin(), out->validity().end(), 1);
  switch (type.kind) {
    case TypeKind::kDouble:
      std::fill(out->f64_data().begin(), out->f64_data().end(), v.AsDouble());
      break;
    case TypeKind::kString:
      std::fill(out->str_data().begin(), out->str_data().end(), v.str());
      break;
    case TypeKind::kDecimal: {
      auto cast = v.CastTo(type);
      int64_t unscaled = cast.ok() && !cast->is_null() ? cast->i64() : 0;
      std::fill(out->i64_data().begin(), out->i64_data().end(), unscaled);
      break;
    }
    default:
      std::fill(out->i64_data().begin(), out->i64_data().end(), v.AsInt64());
      break;
  }
  return out;
}

/// Rescales an i64-backed (decimal) column so both comparison sides share a
/// scale; returns the input when no rescale is needed.
ColumnVectorPtr AlignScale(const ColumnVectorPtr& col, int target_scale) {
  int scale = col->type().kind == TypeKind::kDecimal ? col->type().scale : 0;
  if (scale == target_scale) return col;
  auto out = std::make_shared<ColumnVector>(DataType::Decimal(18, target_scale));
  const size_t n = col->size();
  out->Resize(n);
  out->validity() = col->validity();
  int64_t factor = Pow10(target_scale - scale);
  for (size_t i = 0; i < n; ++i) out->i64_data()[i] = col->i64_data()[i] * factor;
  return out;
}

}  // namespace

Result<ColumnVectorPtr> EvalVector(const Expr& e, const RowBatch& batch) {
  const size_t n = batch.num_rows();
  switch (e.kind) {
    case ExprKind::kColumnRef: {
      if (e.binding < 0 || static_cast<size_t>(e.binding) >= batch.num_columns())
        return Status::ExecError("vector binding out of range: " + e.ToString());
      return batch.column(e.binding);
    }
    case ExprKind::kLiteral:
      return Broadcast(e.literal, e.type, n);
    case ExprKind::kBinary: {
      bool comparison = e.bin_op == BinaryOp::kEq || e.bin_op == BinaryOp::kNe ||
                        e.bin_op == BinaryOp::kLt || e.bin_op == BinaryOp::kLe ||
                        e.bin_op == BinaryOp::kGt || e.bin_op == BinaryOp::kGe;
      bool arithmetic = e.bin_op == BinaryOp::kAdd || e.bin_op == BinaryOp::kSub ||
                        e.bin_op == BinaryOp::kMul;
      if (comparison || arithmetic) {
        HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr l, EvalVector(*e.children[0], batch));
        HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr r, EvalVector(*e.children[1], batch));
        if (IsI64Backed(l->type()) && IsI64Backed(r->type())) {
          // Align decimal scales, then run the i64 kernel.
          int ls = l->type().kind == TypeKind::kDecimal ? l->type().scale : 0;
          int rs = r->type().kind == TypeKind::kDecimal ? r->type().scale : 0;
          int target = std::max(ls, rs);
          ColumnVectorPtr la = AlignScale(l, target);
          ColumnVectorPtr ra = AlignScale(r, target);
          if (comparison) {
            switch (e.bin_op) {
              case BinaryOp::kEq: return CompareI64(*la, *ra, [](int64_t a, int64_t b) { return a == b; });
              case BinaryOp::kNe: return CompareI64(*la, *ra, [](int64_t a, int64_t b) { return a != b; });
              case BinaryOp::kLt: return CompareI64(*la, *ra, [](int64_t a, int64_t b) { return a < b; });
              case BinaryOp::kLe: return CompareI64(*la, *ra, [](int64_t a, int64_t b) { return a <= b; });
              case BinaryOp::kGt: return CompareI64(*la, *ra, [](int64_t a, int64_t b) { return a > b; });
              default: return CompareI64(*la, *ra, [](int64_t a, int64_t b) { return a >= b; });
            }
          }
          // i64 arithmetic stays integer-backed only when the result type
          // agrees (decimal scales already aligned).
          if (e.type.kind == TypeKind::kBigint ||
              (e.type.kind == TypeKind::kDecimal && e.type.scale == target) ||
              e.type.kind == TypeKind::kDate || e.type.kind == TypeKind::kTimestamp) {
            switch (e.bin_op) {
              case BinaryOp::kAdd:
                return ArithI64(*la, *ra, e.type, [](int64_t a, int64_t b) { return a + b; });
              case BinaryOp::kSub:
                return ArithI64(*la, *ra, e.type, [](int64_t a, int64_t b) { return a - b; });
              default:
                if (e.type.kind == TypeKind::kBigint)
                  return ArithI64(*la, *ra, e.type, [](int64_t a, int64_t b) { return a * b; });
                break;  // decimal multiply changes scale: fall through
            }
          }
        }
        bool numeric = l->type().IsNumeric() && r->type().IsNumeric();
        if (numeric && comparison) {
          // Double compare producing booleans.
          auto out = std::make_shared<ColumnVector>(DataType::Boolean());
          out->Resize(n);
          const auto& ln = l->validity();
          const auto& rn = r->validity();
          auto getd = [](const ColumnVector& c, size_t i) {
            if (c.type().kind == TypeKind::kDouble) return c.f64_data()[i];
            return static_cast<double>(c.i64_data()[i]) /
                   static_cast<double>(Pow10(c.type().kind == TypeKind::kDecimal
                                                 ? c.type().scale
                                                 : 0));
          };
          for (size_t i = 0; i < n; ++i) {
            out->validity()[i] = ln[i] & rn[i];
            double a = getd(*l, i), b = getd(*r, i);
            bool v = false;
            switch (e.bin_op) {
              case BinaryOp::kEq: v = a == b; break;
              case BinaryOp::kNe: v = a != b; break;
              case BinaryOp::kLt: v = a < b; break;
              case BinaryOp::kLe: v = a <= b; break;
              case BinaryOp::kGt: v = a > b; break;
              default: v = a >= b; break;
            }
            out->i64_data()[i] = v ? 1 : 0;
          }
          return out;
        }
        if (numeric && arithmetic && e.type.kind == TypeKind::kDouble) {
          switch (e.bin_op) {
            case BinaryOp::kAdd: return ArithF64(*l, *r, [](double a, double b) { return a + b; });
            case BinaryOp::kSub: return ArithF64(*l, *r, [](double a, double b) { return a - b; });
            default: return ArithF64(*l, *r, [](double a, double b) { return a * b; });
          }
        }
      }
      if (e.bin_op == BinaryOp::kAnd || e.bin_op == BinaryOp::kOr) {
        HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr l, EvalVector(*e.children[0], batch));
        HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr r, EvalVector(*e.children[1], batch));
        auto out = std::make_shared<ColumnVector>(DataType::Boolean());
        out->Resize(n);
        bool is_and = e.bin_op == BinaryOp::kAnd;
        for (size_t i = 0; i < n; ++i) {
          bool lnull = l->IsNull(i), rnull = r->IsNull(i);
          bool lv = !lnull && l->GetI64(i) != 0;
          bool rv = !rnull && r->GetI64(i) != 0;
          if (is_and) {
            if ((!lnull && !lv) || (!rnull && !rv)) {
              out->validity()[i] = 1;
              out->i64_data()[i] = 0;
            } else if (lnull || rnull) {
              out->validity()[i] = 0;
            } else {
              out->validity()[i] = 1;
              out->i64_data()[i] = 1;
            }
          } else {
            if (lv || rv) {
              out->validity()[i] = 1;
              out->i64_data()[i] = 1;
            } else if (lnull || rnull) {
              out->validity()[i] = 0;
            } else {
              out->validity()[i] = 1;
              out->i64_data()[i] = 0;
            }
          }
        }
        return out;
      }
      return RowWiseEval(e, batch);
    }
    default:
      return RowWiseEval(e, batch);
  }
}

namespace {

constexpr uint64_t kNullHash = 0x9e3779b97f4a7c15ULL;  // Value::Hash() of NULL

/// One column's contribution, folded into the running combined hashes. Each
/// kind mirrors the corresponding Value::Hash() case exactly.
void FoldColumnHash(const ColumnVector& col, size_t n, std::vector<uint64_t>* hashes) {
  const auto& valid = col.validity();
  auto fold = [&](size_t i, uint64_t h) {
    (*hashes)[i] = HashCombine((*hashes)[i], h);
  };
  switch (col.type().kind) {
    case TypeKind::kString: {
      const auto& data = col.str_data();
      for (size_t i = 0; i < n; ++i)
        fold(i, valid[i] ? Murmur64(data[i].data(), data[i].size(), 0x5eed)
                         : kNullHash);
      break;
    }
    case TypeKind::kDouble: {
      const auto& data = col.f64_data();
      for (size_t i = 0; i < n; ++i) {
        if (!valid[i]) {
          fold(i, kNullHash);
          continue;
        }
        // Integral doubles hash equal with bigints (Value::Hash contract).
        double d = data[i];
        int64_t asint = static_cast<int64_t>(d);
        if (static_cast<double>(asint) == d) {
          fold(i, Murmur64(&asint, sizeof asint, 0x5eed));
        } else {
          fold(i, Murmur64(&d, sizeof d, 0x5eed));
        }
      }
      break;
    }
    case TypeKind::kDecimal: {
      const auto& data = col.i64_data();
      int64_t pow = Pow10(col.type().scale);
      for (size_t i = 0; i < n; ++i) {
        if (!valid[i]) {
          fold(i, kNullHash);
          continue;
        }
        if (data[i] % pow == 0) {
          int64_t whole = data[i] / pow;
          fold(i, Murmur64(&whole, sizeof whole, 0x5eed));
        } else {
          double d = static_cast<double>(data[i]) / static_cast<double>(pow);
          fold(i, Murmur64(&d, sizeof d, 0x5eed));
        }
      }
      break;
    }
    default: {  // bigint / date / timestamp / boolean share the i64 buffer
      const auto& data = col.i64_data();
      for (size_t i = 0; i < n; ++i)
        fold(i, valid[i] ? Murmur64(&data[i], sizeof data[i], 0x5eed) : kNullHash);
      break;
    }
  }
}

}  // namespace

void HashKeyColumns(const std::vector<ColumnVectorPtr>& key_cols, size_t num_rows,
                    std::vector<uint64_t>* hashes, std::vector<uint8_t>* all_valid) {
  hashes->assign(num_rows, kNullHash);
  if (all_valid) all_valid->assign(num_rows, 1);
  for (const ColumnVectorPtr& col : key_cols) {
    FoldColumnHash(*col, num_rows, hashes);
    if (all_valid) {
      const auto& valid = col->validity();
      for (size_t i = 0; i < num_rows; ++i) (*all_valid)[i] &= valid[i];
    }
  }
}

Result<std::vector<int32_t>> FilterSelection(const Expr& predicate,
                                             const RowBatch& batch) {
  HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr mask, EvalVector(predicate, batch));
  std::vector<int32_t> out;
  out.reserve(batch.SelectedSize());
  for (size_t i = 0; i < batch.SelectedSize(); ++i) {
    int32_t row = batch.SelectedRow(i);
    if (!mask->IsNull(row) && mask->GetI64(row) != 0) out.push_back(row);
  }
  return out;
}

}  // namespace hive
