#include <algorithm>

#include "exec/operators.h"
#include "exec/task_retry.h"
#include "exec/vector_eval.h"
#include "optimizer/expr_eval.h"

namespace hive {

namespace {

/// Converts a bound conjunct over the scan output into a sargable predicate
/// when possible (col op literal, BETWEEN, IN, IS [NOT] NULL).
bool ToSarg(const ExprPtr& e, const Schema& schema, SargPredicate* out) {
  auto column_name = [&](const ExprPtr& c) -> const std::string* {
    if (c->kind != ExprKind::kColumnRef) return nullptr;
    if (c->binding < 0 || static_cast<size_t>(c->binding) >= schema.num_fields())
      return nullptr;
    return &schema.field(c->binding).name;
  };
  switch (e->kind) {
    case ExprKind::kBinary: {
      const ExprPtr& l = e->children[0];
      const ExprPtr& r = e->children[1];
      const std::string* col = nullptr;
      Value literal;
      bool mirrored = false;
      if ((col = column_name(l)) && r->kind == ExprKind::kLiteral) {
        literal = r->literal;
      } else if ((col = column_name(r)) && l->kind == ExprKind::kLiteral) {
        literal = l->literal;
        mirrored = true;
      } else {
        return false;
      }
      if (literal.is_null()) return false;
      SargOp op;
      switch (e->bin_op) {
        case BinaryOp::kEq: op = SargOp::kEq; break;
        case BinaryOp::kLt: op = mirrored ? SargOp::kGt : SargOp::kLt; break;
        case BinaryOp::kLe: op = mirrored ? SargOp::kGe : SargOp::kLe; break;
        case BinaryOp::kGt: op = mirrored ? SargOp::kLt : SargOp::kGt; break;
        case BinaryOp::kGe: op = mirrored ? SargOp::kLe : SargOp::kGe; break;
        default: return false;
      }
      out->column = *col;
      out->op = op;
      out->values = {literal};
      return true;
    }
    case ExprKind::kBetween: {
      if (e->negated) return false;
      const std::string* col = column_name(e->children[0]);
      if (!col || e->children[1]->kind != ExprKind::kLiteral ||
          e->children[2]->kind != ExprKind::kLiteral)
        return false;
      out->column = *col;
      out->op = SargOp::kBetween;
      out->values = {e->children[1]->literal, e->children[2]->literal};
      return true;
    }
    case ExprKind::kInList: {
      if (e->negated) return false;
      const std::string* col = column_name(e->children[0]);
      if (!col) return false;
      out->column = *col;
      out->op = SargOp::kIn;
      for (size_t i = 1; i < e->children.size(); ++i) {
        if (e->children[i]->kind != ExprKind::kLiteral) return false;
        out->values.push_back(e->children[i]->literal);
      }
      return true;
    }
    case ExprKind::kIsNull: {
      const std::string* col = column_name(e->children[0]);
      if (!col) return false;
      out->column = *col;
      out->op = e->negated ? SargOp::kIsNotNull : SargOp::kIsNull;
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

ScanOperator::ScanOperator(ExecContext* ctx, const RelNode& node)
    : Operator(ctx),
      table_(node.table),
      projected_(node.projected),
      filters_(node.scan_filters),
      reducers_(node.semijoin_reducers),
      partitions_(node.pruned_partitions),
      partitions_pruned_(node.partitions_pruned),
      out_schema_(node.schema) {}

Status ScanOperator::Open() {
  // Resolve the data-column projection (partition columns are virtual).
  size_t data_width = table_.schema.num_fields();
  output_from_data_.assign(out_schema_.num_fields(), -1);
  output_from_part_.assign(out_schema_.num_fields(), -1);
  for (size_t i = 0; i < projected_.size(); ++i) {
    size_t full_ordinal = projected_[i];
    if (full_ordinal < data_width) {
      output_from_data_[i] = static_cast<int>(data_columns_.size());
      data_columns_.push_back(full_ordinal);
    } else {
      output_from_part_[i] = static_cast<int>(full_ordinal - data_width);
    }
  }

  // Locations to read.
  if (table_.IsPartitioned()) {
    std::vector<PartitionInfo> partitions = partitions_;
    if (!partitions_pruned_) {
      HIVE_ASSIGN_OR_RETURN(partitions,
                            ctx_->catalog->GetPartitions(table_.db, table_.name));
    }
    for (const PartitionInfo& p : partitions)
      locations_.push_back({p.location, p.values});
  } else {
    locations_.push_back({table_.location, {}});
  }

  // Static sarg from the residual filters.
  for (const ExprPtr& f : filters_) {
    SargPredicate pred;
    if (ToSarg(f, out_schema_, &pred)) sarg_.conjuncts.push_back(std::move(pred));
  }

  // Dynamic semijoin reduction (Section 4.6). Must run before morsel
  // enumeration: reducers may drop locations and tighten the sarg.
  HIVE_RETURN_IF_ERROR(RunSemiJoinReducers());

  return EnumerateMorsels();
}

Status ScanOperator::RunSemiJoinReducers() {
  for (const SemiJoinReducer& reducer : reducers_) {
    if (!ctx_->compile_subplan) break;
    HIVE_ASSIGN_OR_RETURN(OperatorPtr build_op, ctx_->compile_subplan(reducer.build_plan));
    HIVE_ASSIGN_OR_RETURN(RowBatch rows, CollectAll(build_op.get()));
    // Evaluate the key expression over the build output.
    HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr keys, EvalVector(*reducer.build_key, rows));
    Value min, max;
    auto bloom = std::make_shared<BloomFilter>(std::max<size_t>(rows.num_rows(), 16),
                                               0.03);
    std::vector<Value> values;
    for (size_t i = 0; i < rows.num_rows(); ++i) {
      if (keys->IsNull(i)) continue;
      Value v = keys->GetValue(i);
      if (min.is_null() || Value::Compare(v, min) < 0) min = v;
      if (max.is_null() || Value::Compare(v, max) > 0) max = v;
      bloom->Add(v);
      if (reducer.partition_pruning && values.size() < 100000) values.push_back(v);
    }
    if (min.is_null()) {
      // Build side empty: nothing can match.
      locations_.clear();
      continue;
    }
    if (reducer.partition_pruning && table_.IsPartitioned()) {
      // Dynamic partition pruning: drop partitions whose value for the
      // target column is not produced by the build side.
      int part_index = -1;
      for (size_t p = 0; p < table_.partition_cols.size(); ++p)
        if (ToLower(table_.partition_cols[p].name) == ToLower(reducer.target_column))
          part_index = static_cast<int>(p);
      if (part_index >= 0) {
        // Sort the build values once and binary-search per partition:
        // O((B + P) log B) instead of the old O(B * P) linear probes.
        auto less = [](const Value& a, const Value& b) {
          return Value::Compare(a, b) < 0;
        };
        std::sort(values.begin(), values.end(), less);
        std::vector<Location> kept;
        for (const Location& loc : locations_) {
          const Value& pv = loc.partition_values[part_index];
          if (std::binary_search(values.begin(), values.end(), pv, less))
            kept.push_back(loc);
        }
        locations_ = std::move(kept);
        continue;
      }
    }
    // Index-semijoin variant (Section 4.6): a min/max range condition for
    // row-group skipping plus a Bloom filter applied row-wise in the scan.
    SargPredicate range;
    range.column = reducer.target_column;
    range.op = SargOp::kBetween;
    range.values = {min, max};
    sarg_.conjuncts.push_back(std::move(range));
    auto idx = out_schema_.IndexOf(reducer.target_column);
    if (idx) runtime_blooms_.push_back({static_cast<int>(*idx), bloom});
  }
  return Status::OK();
}

Status ScanOperator::EnumerateMorsels() {
  // Plan every location up front and flatten the scan into (location, file,
  // row group) morsels — the shared work queue of the parallel layer. Only
  // footers are touched here; data chunks are read morsel by morsel.
  location_states_.resize(locations_.size());
  for (size_t l = 0; l < locations_.size(); ++l) {
    const Location& loc = locations_[l];
    LocationState& state = location_states_[l];
    std::vector<std::string> files;
    if (table_.is_acid) {
      state.acid = std::make_unique<AcidReader>(ctx_->fs, loc.path, table_.schema,
                                                ctx_->chunks);
      AcidScanOptions options;
      options.columns = data_columns_;
      options.sarg = sarg_;
      ValidWriteIdList snapshot = ctx_->snapshot_for
                                      ? ctx_->snapshot_for(table_.FullName())
                                      : ValidWriteIdList::All();
      HIVE_RETURN_IF_ERROR(state.acid->Open(snapshot, options));
      files = state.acid->data_files();
    } else if (ctx_->fs->Exists(loc.path)) {
      // Non-ACID: plain COF files directly under the location.
      HIVE_ASSIGN_OR_RETURN(std::vector<FileInfo> entries,
                            ctx_->fs->ListDir(loc.path));
      for (const FileInfo& f : entries)
        if (!f.is_dir) files.push_back(f.path);
    }
    for (const std::string& path : files) {
      // Footer reads go through the retry policy too: a transient error
      // while opening a file re-attempts instead of failing the vertex.
      HIVE_ASSIGN_OR_RETURN(
          std::shared_ptr<CofReader> reader,
          RunTaskAttempts(ctx_->config, ctx_->clock, ctx_->runtime_stats,
                          [&] { return ctx_->chunks->OpenReader(path); }));
      uint32_t file_index = static_cast<uint32_t>(state.files.size());
      state.files.push_back(reader);
      for (size_t rg = 0; rg < reader->num_row_groups(); ++rg)
        morsels_.push_back({static_cast<uint32_t>(l), file_index,
                            static_cast<uint32_t>(rg)});
    }
  }
  return Status::OK();
}

Result<RowBatch> ScanOperator::PostProcess(RowBatch raw, const Location& loc) const {
  // Assemble the output batch: data columns by position, partition columns
  // as broadcast constants.
  RowBatch out(out_schema_);
  size_t n = raw.num_rows();
  for (size_t i = 0; i < out_schema_.num_fields(); ++i) {
    if (output_from_data_[i] >= 0) {
      out.SetColumn(i, raw.column(output_from_data_[i]));
    } else {
      auto col = std::make_shared<ColumnVector>(out_schema_.field(i).type);
      const Value& v = loc.partition_values[output_from_part_[i]];
      col->Resize(n);
      if (v.is_null()) {
        std::fill(col->validity().begin(), col->validity().end(), 0);
      } else {
        std::fill(col->validity().begin(), col->validity().end(), 1);
        if (out_schema_.field(i).type.kind == TypeKind::kDouble)
          std::fill(col->f64_data().begin(), col->f64_data().end(), v.AsDouble());
        else if (out_schema_.field(i).type.kind == TypeKind::kString)
          std::fill(col->str_data().begin(), col->str_data().end(), v.str());
        else
          std::fill(col->i64_data().begin(), col->i64_data().end(), v.AsInt64());
      }
      out.SetColumn(i, std::move(col));
    }
  }
  out.set_num_rows(n);
  if (raw.has_selection()) out.SetSelection(raw.selection());
  // Residual predicate evaluation (sargs are row-group granularity only).
  for (const ExprPtr& f : filters_) {
    HIVE_ASSIGN_OR_RETURN(std::vector<int32_t> selection, FilterSelection(*f, out));
    out.SetSelection(std::move(selection));
  }
  // Row-level semijoin-reducer Bloom filtering.
  for (const auto& [column, bloom] : runtime_blooms_) {
    std::vector<int32_t> selection;
    selection.reserve(out.SelectedSize());
    const ColumnVector& col = *out.column(column);
    for (size_t i = 0; i < out.SelectedSize(); ++i) {
      int32_t row = out.SelectedRow(i);
      if (!col.IsNull(row) && bloom->MightContain(col.GetValue(row)))
        selection.push_back(row);
    }
    out.SetSelection(std::move(selection));
  }
  return out;
}

Result<RowBatch> ScanOperator::ReadMorsel(size_t index, bool* skipped) {
  *skipped = false;
  const Morsel& m = morsels_[index];
  const Location& loc = locations_[m.location];
  const LocationState& state = location_states_[m.location];
  const std::shared_ptr<CofReader>& reader = state.files[m.file];
  if (!reader->MightMatch(m.row_group, sarg_)) {
    row_groups_skipped_.fetch_add(1, std::memory_order_relaxed);
    *skipped = true;
    return RowBatch();
  }
  if (state.acid) {
    HIVE_ASSIGN_OR_RETURN(RowBatch raw,
                          state.acid->ReadFileRowGroup(reader, m.row_group));
    return PostProcess(std::move(raw), loc);
  }
  Schema raw_schema;
  for (size_t c : data_columns_)
    raw_schema.AddField(reader->schema().field(c).name,
                        reader->schema().field(c).type);
  RowBatch raw(raw_schema);
  for (size_t i = 0; i < data_columns_.size(); ++i) {
    HIVE_ASSIGN_OR_RETURN(
        ColumnVectorPtr col,
        ctx_->chunks->ReadChunk(reader, m.row_group, data_columns_[i]));
    raw.SetColumn(i, std::move(col));
  }
  raw.set_num_rows(reader->row_group(m.row_group).num_rows);
  return PostProcess(std::move(raw), loc);
}

Result<RowBatch> ScanOperator::ReadMorselWithRetry(size_t index, bool* skipped) {
  return RunTaskAttempts(ctx_->config, ctx_->clock, ctx_->runtime_stats,
                         [&] { return ReadMorsel(index, skipped); });
}

void ScanOperator::PrefetchMorsel(size_t index) const {
  if (!ctx_->prefetch_chunk || index >= morsels_.size()) return;
  const Morsel& m = morsels_[index];
  const LocationState& state = location_states_[m.location];
  const std::shared_ptr<CofReader>& reader = state.files[m.file];
  if (!reader->MightMatch(m.row_group, sarg_)) return;
  if (state.acid) {
    for (size_t c : data_columns_)
      ctx_->prefetch_chunk(reader, m.row_group, c + kNumAcidMetaCols);
    for (size_t c = 0; c < kNumAcidMetaCols; ++c)
      ctx_->prefetch_chunk(reader, m.row_group, c);
  } else {
    for (size_t c : data_columns_)
      ctx_->prefetch_chunk(reader, m.row_group, c);
  }
}

Result<RowBatch> ScanOperator::Next(bool* done) {
  *done = false;
  for (;;) {
    HIVE_RETURN_IF_ERROR(CheckCancelled());
    if (next_morsel_ >= morsels_.size()) {
      *done = true;
      return RowBatch();
    }
    bool skipped = false;
    HIVE_ASSIGN_OR_RETURN(RowBatch batch,
                          ReadMorselWithRetry(next_morsel_++, &skipped));
    if (skipped) continue;
    // Serial scan: every row's modeled CPU cost lands on the critical path
    // (the parallel driver charges only its slowest worker instead).
    if (ctx_->clock)
      ctx_->clock->Charge(static_cast<int64_t>(batch.num_rows()) *
                          ctx_->config->scan_cpu_ns_per_row / 1000);
    rows_produced_ += static_cast<int64_t>(batch.SelectedSize());
    return batch;
  }
}

}  // namespace hive
