#include <algorithm>

#include "exec/operators.h"
#include "exec/vector_eval.h"
#include "optimizer/expr_eval.h"

namespace hive {

namespace {

/// Converts a bound conjunct over the scan output into a sargable predicate
/// when possible (col op literal, BETWEEN, IN, IS [NOT] NULL).
bool ToSarg(const ExprPtr& e, const Schema& schema, SargPredicate* out) {
  auto column_name = [&](const ExprPtr& c) -> const std::string* {
    if (c->kind != ExprKind::kColumnRef) return nullptr;
    if (c->binding < 0 || static_cast<size_t>(c->binding) >= schema.num_fields())
      return nullptr;
    return &schema.field(c->binding).name;
  };
  switch (e->kind) {
    case ExprKind::kBinary: {
      const ExprPtr& l = e->children[0];
      const ExprPtr& r = e->children[1];
      const std::string* col = nullptr;
      Value literal;
      bool mirrored = false;
      if ((col = column_name(l)) && r->kind == ExprKind::kLiteral) {
        literal = r->literal;
      } else if ((col = column_name(r)) && l->kind == ExprKind::kLiteral) {
        literal = l->literal;
        mirrored = true;
      } else {
        return false;
      }
      if (literal.is_null()) return false;
      SargOp op;
      switch (e->bin_op) {
        case BinaryOp::kEq: op = SargOp::kEq; break;
        case BinaryOp::kLt: op = mirrored ? SargOp::kGt : SargOp::kLt; break;
        case BinaryOp::kLe: op = mirrored ? SargOp::kGe : SargOp::kLe; break;
        case BinaryOp::kGt: op = mirrored ? SargOp::kLt : SargOp::kGt; break;
        case BinaryOp::kGe: op = mirrored ? SargOp::kLe : SargOp::kGe; break;
        default: return false;
      }
      out->column = *col;
      out->op = op;
      out->values = {literal};
      return true;
    }
    case ExprKind::kBetween: {
      if (e->negated) return false;
      const std::string* col = column_name(e->children[0]);
      if (!col || e->children[1]->kind != ExprKind::kLiteral ||
          e->children[2]->kind != ExprKind::kLiteral)
        return false;
      out->column = *col;
      out->op = SargOp::kBetween;
      out->values = {e->children[1]->literal, e->children[2]->literal};
      return true;
    }
    case ExprKind::kInList: {
      if (e->negated) return false;
      const std::string* col = column_name(e->children[0]);
      if (!col) return false;
      out->column = *col;
      out->op = SargOp::kIn;
      for (size_t i = 1; i < e->children.size(); ++i) {
        if (e->children[i]->kind != ExprKind::kLiteral) return false;
        out->values.push_back(e->children[i]->literal);
      }
      return true;
    }
    case ExprKind::kIsNull: {
      const std::string* col = column_name(e->children[0]);
      if (!col) return false;
      out->column = *col;
      out->op = e->negated ? SargOp::kIsNotNull : SargOp::kIsNull;
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

ScanOperator::ScanOperator(ExecContext* ctx, const RelNode& node)
    : Operator(ctx),
      table_(node.table),
      projected_(node.projected),
      filters_(node.scan_filters),
      reducers_(node.semijoin_reducers),
      partitions_(node.pruned_partitions),
      partitions_pruned_(node.partitions_pruned),
      out_schema_(node.schema) {}

Status ScanOperator::Open() {
  // Resolve the data-column projection (partition columns are virtual).
  size_t data_width = table_.schema.num_fields();
  output_from_data_.assign(out_schema_.num_fields(), -1);
  output_from_part_.assign(out_schema_.num_fields(), -1);
  for (size_t i = 0; i < projected_.size(); ++i) {
    size_t full_ordinal = projected_[i];
    if (full_ordinal < data_width) {
      output_from_data_[i] = static_cast<int>(data_columns_.size());
      data_columns_.push_back(full_ordinal);
    } else {
      output_from_part_[i] = static_cast<int>(full_ordinal - data_width);
    }
  }

  // Locations to read.
  if (table_.IsPartitioned()) {
    std::vector<PartitionInfo> partitions = partitions_;
    if (!partitions_pruned_) {
      HIVE_ASSIGN_OR_RETURN(partitions,
                            ctx_->catalog->GetPartitions(table_.db, table_.name));
    }
    for (const PartitionInfo& p : partitions)
      locations_.push_back({p.location, p.values});
  } else {
    locations_.push_back({table_.location, {}});
  }

  // Static sarg from the residual filters.
  for (const ExprPtr& f : filters_) {
    SargPredicate pred;
    if (ToSarg(f, out_schema_, &pred)) sarg_.conjuncts.push_back(std::move(pred));
  }

  // Dynamic semijoin reduction (Section 4.6).
  HIVE_RETURN_IF_ERROR(RunSemiJoinReducers());

  location_index_ = 0;
  return AdvanceLocation();
}

Status ScanOperator::RunSemiJoinReducers() {
  for (const SemiJoinReducer& reducer : reducers_) {
    if (!ctx_->compile_subplan) break;
    HIVE_ASSIGN_OR_RETURN(OperatorPtr build_op, ctx_->compile_subplan(reducer.build_plan));
    HIVE_ASSIGN_OR_RETURN(RowBatch rows, CollectAll(build_op.get()));
    // Evaluate the key expression over the build output.
    HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr keys, EvalVector(*reducer.build_key, rows));
    Value min, max;
    auto bloom = std::make_shared<BloomFilter>(std::max<size_t>(rows.num_rows(), 16),
                                               0.03);
    std::vector<Value> values;
    for (size_t i = 0; i < rows.num_rows(); ++i) {
      if (keys->IsNull(i)) continue;
      Value v = keys->GetValue(i);
      if (min.is_null() || Value::Compare(v, min) < 0) min = v;
      if (max.is_null() || Value::Compare(v, max) > 0) max = v;
      bloom->Add(v);
      if (reducer.partition_pruning && values.size() < 100000) values.push_back(v);
    }
    if (min.is_null()) {
      // Build side empty: nothing can match.
      locations_.clear();
      continue;
    }
    if (reducer.partition_pruning && table_.IsPartitioned()) {
      // Dynamic partition pruning: drop partitions whose value for the
      // target column is not produced by the build side.
      int part_index = -1;
      for (size_t p = 0; p < table_.partition_cols.size(); ++p)
        if (ToLower(table_.partition_cols[p].name) == ToLower(reducer.target_column))
          part_index = static_cast<int>(p);
      if (part_index >= 0) {
        std::vector<Location> kept;
        for (const Location& loc : locations_) {
          const Value& pv = loc.partition_values[part_index];
          bool match = false;
          for (const Value& v : values)
            if (Value::Compare(v, pv) == 0) match = true;
          if (match) kept.push_back(loc);
        }
        locations_ = std::move(kept);
        continue;
      }
    }
    // Index-semijoin variant (Section 4.6): a min/max range condition for
    // row-group skipping plus a Bloom filter applied row-wise in the scan.
    SargPredicate range;
    range.column = reducer.target_column;
    range.op = SargOp::kBetween;
    range.values = {min, max};
    sarg_.conjuncts.push_back(std::move(range));
    auto idx = out_schema_.IndexOf(reducer.target_column);
    if (idx) runtime_blooms_.push_back({static_cast<int>(*idx), bloom});
  }
  return Status::OK();
}

Status ScanOperator::AdvanceLocation() {
  reader_.reset();
  plain_reader_.reset();
  plain_files_.clear();
  plain_file_index_ = 0;
  plain_rg_ = 0;
  if (location_index_ >= locations_.size()) return Status::OK();
  const Location& loc = locations_[location_index_];
  if (table_.is_acid) {
    reader_ = std::make_unique<AcidReader>(ctx_->fs, loc.path, table_.schema,
                                           ctx_->chunks);
    AcidScanOptions options;
    options.columns = data_columns_;
    options.sarg = sarg_;
    ValidWriteIdList snapshot = ctx_->snapshot_for
                                    ? ctx_->snapshot_for(table_.FullName())
                                    : ValidWriteIdList::All();
    return reader_->Open(snapshot, options);
  }
  // Non-ACID: plain COF files directly under the location.
  if (ctx_->fs->Exists(loc.path)) {
    HIVE_ASSIGN_OR_RETURN(std::vector<FileInfo> files, ctx_->fs->ListDir(loc.path));
    for (const FileInfo& f : files)
      if (!f.is_dir) plain_files_.push_back(f.path);
  }
  return Status::OK();
}

Result<RowBatch> ScanOperator::PostProcess(RowBatch raw, const Location& loc) {
  // Assemble the output batch: data columns by position, partition columns
  // as broadcast constants.
  RowBatch out(out_schema_);
  size_t n = raw.num_rows();
  for (size_t i = 0; i < out_schema_.num_fields(); ++i) {
    if (output_from_data_[i] >= 0) {
      out.SetColumn(i, raw.column(output_from_data_[i]));
    } else {
      auto col = std::make_shared<ColumnVector>(out_schema_.field(i).type);
      const Value& v = loc.partition_values[output_from_part_[i]];
      col->Resize(n);
      if (v.is_null()) {
        std::fill(col->validity().begin(), col->validity().end(), 0);
      } else {
        std::fill(col->validity().begin(), col->validity().end(), 1);
        if (out_schema_.field(i).type.kind == TypeKind::kDouble)
          std::fill(col->f64_data().begin(), col->f64_data().end(), v.AsDouble());
        else if (out_schema_.field(i).type.kind == TypeKind::kString)
          std::fill(col->str_data().begin(), col->str_data().end(), v.str());
        else
          std::fill(col->i64_data().begin(), col->i64_data().end(), v.AsInt64());
      }
      out.SetColumn(i, std::move(col));
    }
  }
  out.set_num_rows(n);
  if (raw.has_selection()) out.SetSelection(raw.selection());
  // Residual predicate evaluation (sargs are row-group granularity only).
  for (const ExprPtr& f : filters_) {
    HIVE_ASSIGN_OR_RETURN(std::vector<int32_t> selection, FilterSelection(*f, out));
    out.SetSelection(std::move(selection));
  }
  // Row-level semijoin-reducer Bloom filtering.
  for (const auto& [column, bloom] : runtime_blooms_) {
    std::vector<int32_t> selection;
    selection.reserve(out.SelectedSize());
    const ColumnVector& col = *out.column(column);
    for (size_t i = 0; i < out.SelectedSize(); ++i) {
      int32_t row = out.SelectedRow(i);
      if (!col.IsNull(row) && bloom->MightContain(col.GetValue(row)))
        selection.push_back(row);
    }
    out.SetSelection(std::move(selection));
  }
  rows_produced_ += static_cast<int64_t>(out.SelectedSize());
  return out;
}

Result<RowBatch> ScanOperator::Next(bool* done) {
  *done = false;
  HIVE_RETURN_IF_ERROR(CheckCancelled());
  for (;;) {
    if (location_index_ >= locations_.size()) {
      *done = true;
      return RowBatch();
    }
    const Location& loc = locations_[location_index_];
    if (table_.is_acid) {
      bool reader_done = false;
      HIVE_ASSIGN_OR_RETURN(RowBatch raw, reader_->NextBatch(&reader_done));
      if (reader_done) {
        row_groups_skipped_ += reader_->row_groups_skipped();
        ++location_index_;
        HIVE_RETURN_IF_ERROR(AdvanceLocation());
        continue;
      }
      return PostProcess(std::move(raw), loc);
    }
    // Non-ACID path.
    if (!plain_reader_) {
      if (plain_file_index_ >= plain_files_.size()) {
        ++location_index_;
        HIVE_RETURN_IF_ERROR(AdvanceLocation());
        continue;
      }
      HIVE_ASSIGN_OR_RETURN(plain_reader_,
                            ctx_->chunks->OpenReader(plain_files_[plain_file_index_]));
      plain_rg_ = 0;
    }
    if (plain_rg_ >= plain_reader_->num_row_groups()) {
      plain_reader_.reset();
      ++plain_file_index_;
      continue;
    }
    size_t rg = plain_rg_++;
    if (!plain_reader_->MightMatch(rg, sarg_)) {
      ++row_groups_skipped_;
      continue;
    }
    Schema raw_schema;
    for (size_t c : data_columns_)
      raw_schema.AddField(plain_reader_->schema().field(c).name,
                          plain_reader_->schema().field(c).type);
    RowBatch raw(raw_schema);
    for (size_t i = 0; i < data_columns_.size(); ++i) {
      HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                            ctx_->chunks->ReadChunk(plain_reader_, rg, data_columns_[i]));
      raw.SetColumn(i, std::move(col));
    }
    raw.set_num_rows(plain_reader_->row_group(rg).num_rows);
    return PostProcess(std::move(raw), loc);
  }
}

}  // namespace hive
