#ifndef HIVE_EXEC_PARALLEL_SCAN_H_
#define HIVE_EXEC_PARALLEL_SCAN_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "exec/operators.h"

namespace hive {

/// A leaf pipeline eligible for morsel-driven parallel execution: one native
/// table scan plus the filter/project stages stacked directly above it
/// (bottom-up order). Detected by the compiler; executed by the operators
/// below across up to ExecContext::max_parallel_workers LLAP executors.
struct ParallelPipelineSpec {
  RelNodePtr scan;
  std::vector<RelNodePtr> stages;  // kFilter / kProject nodes, scan upwards
};

/// Shared machinery of the parallel leaf operators: owns the ScanOperator
/// (whose Open() enumerates the morsel queue) and drives worker loops that
/// claim morsel indexes from an atomic counter, read them through the chunk
/// provider, apply the stacked stages, and hand surviving batches to a sink.
/// Worker 0 always runs on the calling (coordinator) thread; workers 1..K-1
/// fan out through ExecContext::submit_worker when present, falling back to
/// inline execution otherwise. Each worker prefetches a morsel one wave
/// ahead through the I/O elevator so chunks decode off the execution path.
class MorselDriver {
 public:
  MorselDriver(ExecContext* ctx, ParallelPipelineSpec spec);

  /// Opens the scan (semijoin reducers, morsel enumeration) and resolves
  /// per-stage digests for runtime-stats recording.
  Status Open();

  /// Picks the worker count for this pipeline: morsel-bounded, at least 1.
  int DecideWorkers() const;

  /// Runs the pipeline to completion. `sink` receives (worker, morsel,
  /// batch) and must tolerate concurrent calls with distinct worker ids.
  Status Run(int workers,
             const std::function<Status(int, size_t, RowBatch&&)>& sink);

  Status Close() { return scan_->Close(); }
  ScanOperator* scan() { return scan_.get(); }
  size_t num_morsels() const { return scan_->num_morsels(); }

 private:
  Status WorkerLoop(int worker,
                    const std::function<Status(int, size_t, RowBatch&&)>& sink);

  /// Straggler mitigation (Tez speculative execution): after a morsel task
  /// completes, its cost (modeled CPU + latency injected during its reads)
  /// is compared against the median completed task. A task slower than
  /// speculation.slowdown.factor x the median gets a speculative duplicate
  /// attempt; the cheaper attempt's batch is kept (ties keep the original,
  /// deterministically) and the loser's injected latency is refunded from
  /// the virtual clock — the cluster took the first finisher's path.
  Result<RowBatch> MaybeSpeculate(size_t morsel, RowBatch&& original,
                                  int64_t cpu_us, int64_t injected_us,
                                  int64_t* kept_cost_us);
  /// Records a completed task cost; returns the straggler threshold (or 0
  /// while fewer than 3 tasks have completed — no baseline yet).
  int64_t RecordCostAndThreshold(int64_t cost_us);

  ExecContext* ctx_;
  ParallelPipelineSpec spec_;
  std::unique_ptr<ScanOperator> scan_;
  std::string scan_digest_;
  /// Parallel to spec_.stages: digest for kFilter stages (recorded like the
  /// serial FilterOperator wrapper), empty for kProject (not recorded).
  std::vector<std::string> stage_digests_;
  std::atomic<size_t> next_morsel_{0};
  std::atomic<bool> failed_{false};
  int workers_ = 1;
  /// Modeled scan-CPU nanoseconds accumulated by each worker; Run() charges
  /// the maximum (the critical path) to the virtual clock.
  std::vector<int64_t> worker_busy_ns_;
  /// Completed task costs (us of modeled CPU + injected latency), the
  /// baseline the straggler detector takes its median from.
  Mutex cost_mu_{"exec.morsel.cost.mu"};
  std::vector<int64_t> completed_costs_ HIVE_GUARDED_BY(cost_mu_);
  /// Engine-metrics instruments, resolved once per Run() (the registry
  /// lookup takes a lock; per-morsel recording is lock-free). Null when the
  /// context carries no registry.
  obs::Counter* morsels_claimed_ = nullptr;
  obs::Counter* morsels_skipped_ = nullptr;
  obs::Histogram* morsel_cost_us_ = nullptr;
  obs::Histogram* morsel_queue_wait_us_ = nullptr;
  int64_t run_start_wall_us_ = 0;
};

/// Gather exchange over a parallel scan pipeline: workers write each
/// morsel's finished batch into a slot indexed by morsel, and Next() emits
/// the slots in morsel order — byte-identical to the serial operator chain
/// at any worker count. The pipeline runs on the first Next() call.
class ParallelScanOperator : public Operator {
 public:
  ParallelScanOperator(ExecContext* ctx, ParallelPipelineSpec spec);

  Status Open() override { return driver_.Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override { return driver_.Close(); }
  const Schema& schema() const override { return schema_; }

  ScanOperator* scan() { return driver_.scan(); }

 private:
  MorselDriver driver_;
  Schema schema_;
  std::vector<RowBatch> results_;   // slot per morsel (ordered gather)
  std::vector<uint8_t> present_;
  bool ran_ = false;
  size_t emit_ = 0;
};

/// Morsel-parallel hash join: the build (right) side compiles to a regular
/// operator subtree and finalizes first — partitioned across the executor
/// pool inside HashJoinCore::Build — then the probe (left) side runs as a
/// parallel leaf pipeline whose workers probe the shared read-only table
/// concurrently. Output batches land in per-morsel slots and emit in morsel
/// order (ordered gather), so results are byte-identical to the serial
/// HashJoinOperator at any worker count. The probe subtree opens only after
/// the build finalized, same lazy-open contract as the serial operator.
class ParallelHashJoinOperator : public Operator {
 public:
  ParallelHashJoinOperator(ExecContext* ctx, ParallelPipelineSpec probe_spec,
                           OperatorPtr build, TableRef::JoinType join_type,
                           ExprPtr condition, Schema schema);

  Status Open() override;
  Result<RowBatch> Next(bool* done) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

  HashJoinCore* core() { return &core_; }

 private:
  Status RunPipeline();

  MorselDriver driver_;
  OperatorPtr build_;
  Schema probe_schema_;
  Schema schema_;
  HashJoinCore core_;
  bool is_full_join_;
  std::vector<RowBatch> results_;  // slot per morsel (ordered gather)
  std::vector<uint8_t> present_;
  /// Modeled probe CPU per worker; RunPipeline charges the maximum (the
  /// critical path), mirroring MorselDriver's scan-CPU accounting.
  std::vector<int64_t> probe_busy_ns_;
  bool ran_ = false;
  bool emitted_unmatched_ = false;
  size_t emit_ = 0;
};

/// Partial aggregation over a parallel scan pipeline: each worker folds its
/// morsels into a private GroupedAggState keyed by (morsel << 24 | row)
/// sequence numbers; the coordinator merges the partials and emits groups in
/// first-seen input order — identical output at any worker count.
class ParallelAggregateOperator : public Operator {
 public:
  ParallelAggregateOperator(ExecContext* ctx, ParallelPipelineSpec spec,
                            std::vector<ExprPtr> keys, std::vector<AggCall> aggs,
                            Schema schema);

  Status Open() override { return driver_.Open(); }
  Result<RowBatch> Next(bool* done) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

  void set_profile_node(obs::OperatorProfileNode* node) { profile_node_ = node; }

 private:
  Status RunPipeline();

  MorselDriver driver_;
  std::vector<ExprPtr> keys_;
  std::vector<AggCall> aggs_;
  Schema schema_;
  std::vector<std::unique_ptr<GroupedAggState>> partials_;  // one per worker
  bool ran_ = false;
  size_t emit_index_ = 0;
  /// Per-worker reservations over the shared query budget; a denied grow
  /// flushes that worker's partial state into spill_ (its own stream set).
  std::vector<std::unique_ptr<MemoryReservation>> worker_reservations_;
  std::unique_ptr<AggSpillSet> spill_;
  obs::OperatorProfileNode* profile_node_ = nullptr;
};

}  // namespace hive

#endif  // HIVE_EXEC_PARALLEL_SCAN_H_
