#include <algorithm>
#include <cstdio>
#include <future>

#include "common/hash.h"
#include "exec/operators.h"
#include "exec/vector_eval.h"
#include "optimizer/expr_eval.h"
#include "obs/metric_names.h"

namespace hive {

namespace {

void SplitAnd(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e && e->kind == ExprKind::kBinary && e->bin_op == BinaryOp::kAnd) {
    SplitAnd(e->children[0], out);
    SplitAnd(e->children[1], out);
    return;
  }
  if (e) out->push_back(e);
}

bool BindingsBelow(const ExprPtr& e, int width) {
  if (!e) return true;
  if (e->kind == ExprKind::kColumnRef) return e->binding < width;
  for (const ExprPtr& c : e->children)
    if (!BindingsBelow(c, width)) return false;
  return true;
}

bool BindingsAtOrAbove(const ExprPtr& e, int width) {
  if (!e) return true;
  if (e->kind == ExprKind::kColumnRef) return e->binding >= width;
  for (const ExprPtr& c : e->children)
    if (!BindingsAtOrAbove(c, width)) return false;
  return true;
}

ExprPtr ShiftClone(const ExprPtr& e, int delta) {
  ExprPtr out = CloneExpr(e);
  std::function<void(const ExprPtr&)> shift = [&](const ExprPtr& x) {
    if (!x) return;
    if (x->kind == ExprKind::kColumnRef && x->binding >= 0) x->binding += delta;
    for (const ExprPtr& c : x->children) shift(c);
  };
  shift(out);
  return out;
}

/// Extracts the equi-key pairs and residual conjuncts of a join condition
/// given the probe side's width. Shared by runtime binding and the
/// plan-time perfect-hash eligibility check.
void SplitJoinCondition(const ExprPtr& condition, int left_width,
                        std::vector<ExprPtr>* left_keys,
                        std::vector<ExprPtr>* right_keys,
                        std::vector<ExprPtr>* residual_conjuncts) {
  std::vector<ExprPtr> conjuncts;
  SplitAnd(condition, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    if (c->kind == ExprKind::kLiteral) continue;  // TRUE markers
    if (c->kind == ExprKind::kBinary && c->bin_op == BinaryOp::kEq) {
      const ExprPtr& a = c->children[0];
      const ExprPtr& b = c->children[1];
      if (BindingsBelow(a, left_width) && BindingsAtOrAbove(b, left_width)) {
        left_keys->push_back(a);
        right_keys->push_back(ShiftClone(b, -left_width));
        continue;
      }
      if (BindingsBelow(b, left_width) && BindingsAtOrAbove(a, left_width)) {
        left_keys->push_back(b);
        right_keys->push_back(ShiftClone(a, -left_width));
        continue;
      }
    }
    residual_conjuncts->push_back(c);
  }
}

}  // namespace

// --- HashJoinCore ---

HashJoinCore::HashJoinCore(ExecContext* ctx, TableRef::JoinType join_type,
                           ExprPtr condition, const Schema* out_schema)
    : ctx_(ctx),
      join_type_(join_type),
      condition_(std::move(condition)),
      out_schema_(out_schema) {}

HashJoinCore::~HashJoinCore() = default;

/// Grace-mode state: depth-0 partition writers for both sides, the output
/// and tail runs the partition pairs produce, and the merge cursors that
/// stream them back in global probe (then build) order.
struct HashJoinCore::GraceState {
  explicit GraceState(int p) : parts(p), build_writers(p), probe_writers(p) {}

  int parts;
  uint64_t id = 0;
  std::string prefix;           // <spill_dir>/j<id>
  uint64_t stream_counter = 0;  // unique suffix for recursive/output streams
  Schema build_schema;

  std::vector<std::unique_ptr<SpillBatchWriter>> build_writers;  // depth 0
  std::vector<std::unique_ptr<SpillBatchWriter>> probe_writers;  // depth 0
  uint64_t build_seq = 0;  // global build row counter (doubles as row count)
  uint64_t probe_seq = 0;  // global probe row counter
  int64_t partitions_spawned = 0;
  int max_depth = 0;
  uint64_t bytes = 0;  // spill bytes this join wrote

  std::vector<std::unique_ptr<SpillBatchWriter>> output_runs;
  std::vector<std::unique_ptr<SpillBatchWriter>> tail_runs;

  struct Cursor {
    std::unique_ptr<SpillBatchReader> reader;
    RowBatch batch;
    std::vector<uint64_t> seqs;
    size_t pos = 0;
    bool done = false;
  };
  std::vector<Cursor> cursors;
  bool merge_armed = false;
  bool tail_phase = false;

  Status Refill(Cursor* c) {
    c->pos = 0;
    HIVE_ASSIGN_OR_RETURN(bool more, c->reader->NextBatch(&c->batch, &c->seqs));
    if (!more) c->done = true;
    return Status::OK();
  }

  Status Arm(ExecContext* ctx,
             std::vector<std::unique_ptr<SpillBatchWriter>>& runs) {
    cursors.clear();
    for (std::unique_ptr<SpillBatchWriter>& w : runs) {
      if (!w || w->num_rows() == 0) continue;
      cursors.emplace_back();
      Cursor& c = cursors.back();
      c.batch = RowBatch(w->schema());
      c.reader = std::make_unique<SpillBatchReader>(ctx, *w);
      HIVE_RETURN_IF_ERROR(Refill(&c));
    }
    return Status::OK();
  }

  /// One k-way merge step: up to `limit` rows in ascending sequence order.
  /// Each probe (resp. build) row lands in exactly one partition, so the
  /// per-run sequences are disjoint and ascending — the merge reproduces
  /// the serial emission order exactly.
  Result<RowBatch> MergeStep(const Schema& schema, size_t limit) {
    RowBatch out(schema);
    size_t out_rows = 0;
    while (out_rows < limit) {
      Cursor* best = nullptr;
      for (Cursor& c : cursors) {
        if (c.done) continue;
        if (!best || c.seqs[c.pos] < best->seqs[best->pos]) best = &c;
      }
      if (!best) break;
      for (size_t col = 0; col < out.num_columns(); ++col)
        out.column(col)->AppendFrom(*best->batch.column(col), best->pos);
      ++out_rows;
      ++best->pos;
      if (best->pos >= best->batch.num_rows()) HIVE_RETURN_IF_ERROR(Refill(best));
    }
    out.set_num_rows(out_rows);
    return out;
  }
};

bool HashJoinCore::PerfectHashEligible(const ExprPtr& condition, int left_width) {
  std::vector<ExprPtr> left_keys, right_keys, residual;
  SplitJoinCondition(condition, left_width, &left_keys, &right_keys, &residual);
  if (left_keys.size() != 1) return false;
  TypeKind lk = left_keys[0]->type.kind;
  TypeKind rk = right_keys[0]->type.kind;
  // Same non-decimal integer kind on both sides: array-index equality then
  // coincides with Value::Compare (cross-kind integer comparisons do not —
  // BIGINT 7 never equals DATE 7).
  if (lk != rk) return false;
  return lk == TypeKind::kBigint || lk == TypeKind::kDate ||
         lk == TypeKind::kTimestamp;
}

Status HashJoinCore::BindCondition(const Schema& left_schema) {
  left_width_ = left_schema.num_fields();
  std::vector<ExprPtr> residual_conjuncts;
  SplitJoinCondition(condition_, static_cast<int>(left_width_), &left_keys_,
                     &right_keys_, &residual_conjuncts);
  for (const ExprPtr& c : residual_conjuncts) {
    if (!residual_) {
      residual_ = c;
    } else {
      residual_ = MakeBinary(BinaryOp::kAnd, residual_, c);
      residual_->type = DataType::Boolean();
    }
  }
  // Typed comparison plan per key pair; anything without a safe fast path
  // (cross-kind numerics, cross-scale decimals) verifies boxed through
  // Value::Compare, which is what the hash contract is defined against.
  key_cmp_.clear();
  for (size_t k = 0; k < left_keys_.size(); ++k) {
    const DataType& lt = left_keys_[k]->type;
    const DataType& rt = right_keys_[k]->type;
    KeyCmp cmp = KeyCmp::kBoxed;
    if (lt.kind == rt.kind) {
      switch (lt.kind) {
        case TypeKind::kBigint:
        case TypeKind::kDate:
        case TypeKind::kTimestamp:
        case TypeKind::kBoolean:
          cmp = KeyCmp::kI64;
          break;
        case TypeKind::kDecimal:
          if (lt.scale == rt.scale) cmp = KeyCmp::kI64;
          break;
        case TypeKind::kDouble:
          cmp = KeyCmp::kF64;
          break;
        case TypeKind::kString:
          cmp = KeyCmp::kStr;
          break;
        default:
          break;
      }
    }
    key_cmp_.push_back(cmp);
  }
  return Status::OK();
}

Status HashJoinCore::Build(Operator* build_child) {
  build_ = RowBatch(build_child->schema());
  reservation_.Attach(ctx_->query_memory);
  bool done = false;
  size_t build_rows = 0;
  // Reservation grows by incoming batch bytes (an O(batch) approximation of
  // the dense footprint; rescanning build_ per batch would be quadratic).
  uint64_t accum_bytes = 0;
  for (;;) {
    HIVE_RETURN_IF_ERROR(ctx_->CheckInterrupted());
    HIVE_ASSIGN_OR_RETURN(RowBatch batch, build_child->Next(&done));
    if (done) break;
    if (grace_) {
      HIVE_RETURN_IF_ERROR(GraceRouteBuildBatch(batch));
      continue;
    }
    build_rows += batch.SelectedSize();
    for (size_t i = 0; i < batch.SelectedSize(); ++i) {
      int32_t row = batch.SelectedRow(i);
      for (size_t c = 0; c < build_.num_columns(); ++c)
        build_.column(c)->AppendFrom(*batch.column(c), row);
    }
    build_.set_num_rows(build_rows);
    accum_bytes += batch.ByteSize();
    if (!reservation_.GrowTo(static_cast<int64_t>(accum_bytes))) {
      CountSpillMetric(ctx_, obs::metric::kSpillDeniedReservations, 1);
      // Cross and non-equi joins have no key to partition by; they fail
      // rather than spill.
      if (!ctx_->CanSpill() || right_keys_.empty())
        return BudgetExceededStatus("hash join build",
                                    static_cast<int64_t>(accum_bytes), ctx_);
      HIVE_RETURN_IF_ERROR(EnterGrace());
      build_rows = 0;
      accum_bytes = 0;
    }
  }

  // The hash table rides on top of the dense rows (~24 bytes/row of slots
  // and chain entries); reserve it before finalizing.
  if (!grace_ && build_rows > 0 && !right_keys_.empty() &&
      !reservation_.GrowTo(static_cast<int64_t>(accum_bytes) +
                           static_cast<int64_t>(build_rows) * 24)) {
    CountSpillMetric(ctx_, obs::metric::kSpillDeniedReservations, 1);
    if (!ctx_->CanSpill())
      return BudgetExceededStatus("hash join build",
                                  static_cast<int64_t>(accum_bytes), ctx_);
    build_.set_num_rows(build_rows);
    HIVE_RETURN_IF_ERROR(EnterGrace());
  }

  obs::Counter* metric_perfect = nullptr;
  if (ctx_->metrics) {
    metric_perfect = ctx_->metrics->counter(obs::metric::kJoinPerfectHash);
    metric_probe_hits_ = ctx_->metrics->counter(obs::metric::kJoinProbeHits);
    metric_probe_misses_ = ctx_->metrics->counter(obs::metric::kJoinProbeMisses);
  }

  if (grace_) {
    GraceState& g = *grace_;
    if (static_cast<int64_t>(g.build_seq) > ctx_->join_build_row_limit)
      return Status::ExecError("hash join build side exceeded memory limit (" +
                               std::to_string(g.build_seq) + " rows)");
    for (std::unique_ptr<SpillBatchWriter>& w : g.build_writers) {
      if (!w) continue;
      HIVE_RETURN_IF_ERROR(w->Finish());
      g.bytes += w->bytes_written();
    }
    if (ctx_->metrics)
      ctx_->metrics->counter(obs::metric::kJoinBuildRows)
          ->Add(static_cast<int64_t>(g.build_seq));
    // The build side materialized to spill; that is this stage's output.
    return ctx_->OnStageBoundary(g.bytes);
  }

  build_.set_num_rows(build_rows);
  if (static_cast<int64_t>(build_.num_rows()) > ctx_->join_build_row_limit)
    return Status::ExecError("hash join build side exceeded memory limit (" +
                             std::to_string(build_.num_rows()) + " rows)");
  const size_t n = build_.num_rows();
  matched_ = std::unique_ptr<std::atomic<uint8_t>[]>(new std::atomic<uint8_t>[n]);
  for (size_t i = 0; i < n; ++i) matched_[i].store(0, std::memory_order_relaxed);

  if (ctx_->metrics)
    ctx_->metrics->counter(obs::metric::kJoinBuildRows)->Add(static_cast<int64_t>(n));

  if (!right_keys_.empty()) {
    // Vectorized key evaluation + column-wise hashing over the dense build
    // batch: no per-row boxed rows, no per-row key vectors.
    build_key_cols_.clear();
    for (const ExprPtr& k : right_keys_) {
      HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*k, build_));
      build_key_cols_.push_back(std::move(col));
    }
    std::vector<uint64_t> hashes;
    std::vector<uint8_t> valid;
    HashKeyColumns(build_key_cols_, n, &hashes, &valid);

    const int64_t ns_per_row = ctx_->config->join_cpu_ns_per_row;
    bool perfect_built = false;
    if (perfect_hint_ && ctx_->config->perfect_hash_join_enabled &&
        right_keys_.size() == 1 && key_cmp_[0] == KeyCmp::kI64 && n > 0) {
      // Build finalize decides from min/max whether the single integer key
      // domain is dense enough for an array table; duplicates make TryBuild
      // bail back to the generic path.
      const std::vector<int64_t>& keys = build_key_cols_[0]->i64_data();
      int64_t mn = 0, mx = 0;
      size_t cnt = 0;
      for (size_t r = 0; r < n; ++r) {
        if (!valid[r]) continue;
        if (cnt == 0 || keys[r] < mn) mn = keys[r];
        if (cnt == 0 || keys[r] > mx) mx = keys[r];
        ++cnt;
      }
      if (cnt > 0) {
        uint64_t range = static_cast<uint64_t>(mx) - static_cast<uint64_t>(mn) + 1;
        // Density rule: the array may be at most 2x the build rows (plus a
        // small constant for tiny tables), and never outlandishly large.
        if (range <= 2 * cnt + 1024 && range <= (1u << 22))
          perfect_built = perfect_.TryBuild(keys, valid, mn, mx);
      }
    }
    if (perfect_built) {
      if (metric_perfect) metric_perfect->Inc();
      if (ctx_->clock)
        ctx_->clock->Charge(static_cast<int64_t>(n) * ns_per_row / 1000);
    } else {
      // Partitioned parallel build: partitions share nothing (a hash's top
      // bits pick its partition), so workers claim partitions from an atomic
      // counter and insert lock-free. Chain order within a partition depends
      // only on row order, which every partition walks ascending — the table
      // is identical at any worker or partition count.
      bool want_parallel = ctx_->submit_worker != nullptr &&
                           ctx_->config->parallel_join_enabled &&
                           ctx_->mode != RuntimeMode::kMapReduce &&
                           ctx_->max_parallel_workers > 1;
      int target = want_parallel ? std::min(ctx_->max_parallel_workers, 16) : 1;
      table_.Init(hashes, valid, target);
      const int parts = table_.num_partitions();
      const int workers = want_parallel ? std::min(ctx_->max_parallel_workers, parts) : 1;
      std::atomic<size_t> next_part{0};
      std::vector<int64_t> busy_ns(static_cast<size_t>(workers), 0);
      auto build_loop = [&](int w) -> Status {
        for (;;) {
          size_t p = next_part.fetch_add(1, std::memory_order_relaxed);
          if (p >= static_cast<size_t>(parts)) break;
          table_.BuildPartition(static_cast<int>(p), hashes, valid);
          busy_ns[static_cast<size_t>(w)] +=
              static_cast<int64_t>(table_.num_entries_in(static_cast<int>(p))) *
              ns_per_row;
        }
        return Status::OK();
      };
      std::vector<std::future<Status>> futures;
      for (int w = 1; w < workers; ++w)
        futures.push_back(ctx_->submit_worker([&build_loop, w] { return build_loop(w); }));
      Status status = build_loop(0);
      for (auto& f : futures) {
        Status s = f.get();
        if (status.ok() && !s.ok()) status = s;
      }
      HIVE_RETURN_IF_ERROR(status);
      // Like scan CPU, build CPU charges the critical path: the slowest
      // worker in a parallel build, every insert in a serial one.
      int64_t critical_ns = 0;
      for (int64_t b : busy_ns) critical_ns = std::max(critical_ns, b);
      if (ctx_->clock) ctx_->clock->Charge(critical_ns / 1000);
    }
  }
  return ctx_->OnStageBoundary(build_.ByteSize());
}

Status HashJoinCore::EnterGrace() {
  grace_ = std::make_unique<GraceState>(
      std::max(2, ctx_->config ? ctx_->config->spill_partitions : 8));
  GraceState& g = *grace_;
  g.id = NextSpillStreamId();
  g.prefix = ctx_->spill_dir + "/j" + std::to_string(g.id);
  g.build_schema = build_.schema();
  Status routed = GraceRouteBuildBatch(build_);
  build_ = RowBatch(g.build_schema);
  reservation_.Release();
  return routed;
}

Status HashJoinCore::GraceRouteBuildBatch(const RowBatch& batch) {
  GraceState& g = *grace_;
  if (batch.SelectedSize() == 0) return Status::OK();
  std::vector<ColumnVectorPtr> key_cols;
  for (const ExprPtr& k : right_keys_) {
    HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*k, batch));
    key_cols.push_back(std::move(col));
  }
  std::vector<uint64_t> hashes;
  std::vector<uint8_t> valid;
  HashKeyColumns(key_cols, batch.num_rows(), &hashes, &valid);
  for (size_t i = 0; i < batch.SelectedSize(); ++i) {
    int32_t src = batch.SelectedRow(i);
    uint32_t p = SpillPartitionOf(hashes[static_cast<size_t>(src)], 0, g.parts);
    std::unique_ptr<SpillBatchWriter>& w = g.build_writers[p];
    if (!w) {
      w = std::make_unique<SpillBatchWriter>(
          ctx_, g.prefix + ".b" + std::to_string(p), g.build_schema, true);
      CountSpillMetric(ctx_, obs::metric::kSpillPartitions, 1);
      ++g.partitions_spawned;
    }
    HIVE_RETURN_IF_ERROR(w->AppendRow(batch, src, g.build_seq++));
  }
  return Status::OK();
}

Status HashJoinCore::GraceAddProbeBatch(const RowBatch& batch) {
  GraceState& g = *grace_;
  if (batch.SelectedSize() == 0) return Status::OK();
  std::vector<ColumnVectorPtr> key_cols;
  for (const ExprPtr& k : left_keys_) {
    HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*k, batch));
    key_cols.push_back(std::move(col));
  }
  std::vector<uint64_t> hashes;
  std::vector<uint8_t> valid;
  HashKeyColumns(key_cols, batch.num_rows(), &hashes, &valid);
  for (size_t i = 0; i < batch.SelectedSize(); ++i) {
    int32_t src = batch.SelectedRow(i);
    uint32_t p = SpillPartitionOf(hashes[static_cast<size_t>(src)], 0, g.parts);
    std::unique_ptr<SpillBatchWriter>& w = g.probe_writers[p];
    if (!w) {
      w = std::make_unique<SpillBatchWriter>(
          ctx_, g.prefix + ".p" + std::to_string(p), batch.schema(), true);
      CountSpillMetric(ctx_, obs::metric::kSpillPartitions, 1);
      ++g.partitions_spawned;
    }
    HIVE_RETURN_IF_ERROR(w->AppendRow(batch, src, g.probe_seq++));
  }
  return Status::OK();
}

Status HashJoinCore::GraceFinishProbe() {
  GraceState& g = *grace_;
  for (std::unique_ptr<SpillBatchWriter>& w : g.probe_writers) {
    if (!w) continue;
    HIVE_RETURN_IF_ERROR(w->Finish());
    g.bytes += w->bytes_written();
  }
  // Serial probe semantics: every probe row pays its modeled CPU exactly
  // once, whichever partition pair ends up probing it.
  if (ctx_->clock)
    ctx_->clock->Charge(static_cast<int64_t>(g.probe_seq) * probe_ns_per_row() /
                        1000);
  for (int p = 0; p < g.parts; ++p)
    HIVE_RETURN_IF_ERROR(JoinPartitionPair(0, g.build_writers[p].get(),
                                           g.probe_writers[p].get()));
  return Status::OK();
}

Status HashJoinCore::RebuildTableOverBuild() {
  const size_t n = build_.num_rows();
  matched_ = std::unique_ptr<std::atomic<uint8_t>[]>(new std::atomic<uint8_t>[n]);
  for (size_t i = 0; i < n; ++i) matched_[i].store(0, std::memory_order_relaxed);
  build_key_cols_.clear();
  for (const ExprPtr& k : right_keys_) {
    HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*k, build_));
    build_key_cols_.push_back(std::move(col));
  }
  std::vector<uint64_t> hashes;
  std::vector<uint8_t> valid;
  HashKeyColumns(build_key_cols_, n, &hashes, &valid);
  table_.Init(hashes, valid, 1);
  if (n > 0) table_.BuildPartition(0, hashes, valid);
  if (ctx_->clock)
    ctx_->clock->Charge(static_cast<int64_t>(n) *
                        ctx_->config->join_cpu_ns_per_row / 1000);
  return Status::OK();
}

Status HashJoinCore::JoinPartitionPair(int depth, SpillBatchWriter* build_run,
                                       SpillBatchWriter* probe_run) {
  GraceState& g = *grace_;
  if (depth > g.max_depth) g.max_depth = depth;
  const bool full = join_type_ == TableRef::JoinType::kFull;
  const bool anti = join_type_ == TableRef::JoinType::kAnti;
  const bool left_outer = join_type_ == TableRef::JoinType::kLeft || full;
  // Pairs that cannot emit anything skip all I/O: without probe rows only
  // FULL OUTER produces output (the unmatched-build tail); without build
  // rows only the null-extending join types do.
  if (!probe_run && !(full && build_run)) return Status::OK();
  if (!build_run && !(anti || left_outer)) return Status::OK();

  const bool may_recurse =
      depth < (ctx_->config ? ctx_->config->spill_max_recursion : 4);

  // Load the build partition under the reservation.
  build_ = RowBatch(g.build_schema);
  grace_build_seqs_.clear();
  bool over_budget = false;
  uint64_t loaded_bytes = 0;
  if (build_run) {
    SpillBatchReader reader(ctx_, *build_run);
    RowBatch chunk;
    std::vector<uint64_t> seqs;
    for (;;) {
      HIVE_RETURN_IF_ERROR(ctx_->CheckInterrupted());
      HIVE_ASSIGN_OR_RETURN(bool more, reader.NextBatch(&chunk, &seqs));
      if (!more) break;
      for (size_t r = 0; r < chunk.num_rows(); ++r) {
        for (size_t c = 0; c < build_.num_columns(); ++c)
          build_.column(c)->AppendFrom(*chunk.column(c), r);
        grace_build_seqs_.push_back(seqs[r]);
      }
      loaded_bytes += chunk.ByteSize();
      if (!reservation_.GrowTo(
              static_cast<int64_t>(loaded_bytes) +
              static_cast<int64_t>(grace_build_seqs_.size()) * 24)) {
        CountSpillMetric(ctx_, obs::metric::kSpillDeniedReservations, 1);
        // Past the recursion bound (duplicate-heavy keys cannot split
        // further), finish loading best-effort instead of failing.
        if (may_recurse) {
          over_budget = true;
          break;
        }
      }
    }
    build_.set_num_rows(grace_build_seqs_.size());
  }

  if (over_budget) {
    // Repartition both runs one hash byte deeper and recurse pairwise.
    build_ = RowBatch(g.build_schema);
    grace_build_seqs_.clear();
    reservation_.Release();
    auto repartition =
        [&](SpillBatchWriter* run, const std::vector<ExprPtr>& keys,
            const char* kind,
            std::vector<std::unique_ptr<SpillBatchWriter>>* subs) -> Status {
      SpillBatchReader reader(ctx_, *run);
      RowBatch chunk;
      std::vector<uint64_t> seqs;
      for (;;) {
        HIVE_RETURN_IF_ERROR(ctx_->CheckInterrupted());
        HIVE_ASSIGN_OR_RETURN(bool more, reader.NextBatch(&chunk, &seqs));
        if (!more) break;
        std::vector<ColumnVectorPtr> key_cols;
        for (const ExprPtr& k : keys) {
          HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*k, chunk));
          key_cols.push_back(std::move(col));
        }
        std::vector<uint64_t> hashes;
        std::vector<uint8_t> valid;
        HashKeyColumns(key_cols, chunk.num_rows(), &hashes, &valid);
        for (size_t r = 0; r < chunk.num_rows(); ++r) {
          uint32_t p = SpillPartitionOf(hashes[r], depth + 1, g.parts);
          std::unique_ptr<SpillBatchWriter>& w = (*subs)[p];
          if (!w) {
            w = std::make_unique<SpillBatchWriter>(
                ctx_,
                g.prefix + ".s" + std::to_string(g.stream_counter++) + kind,
                run->schema(), true);
            CountSpillMetric(ctx_, obs::metric::kSpillPartitions, 1);
            ++g.partitions_spawned;
          }
          HIVE_RETURN_IF_ERROR(w->AppendBatchRow(chunk, r, seqs[r]));
        }
      }
      for (std::unique_ptr<SpillBatchWriter>& w : *subs) {
        if (!w) continue;
        HIVE_RETURN_IF_ERROR(w->Finish());
        g.bytes += w->bytes_written();
      }
      return Status::OK();
    };
    std::vector<std::unique_ptr<SpillBatchWriter>> sub_build(
        static_cast<size_t>(g.parts));
    std::vector<std::unique_ptr<SpillBatchWriter>> sub_probe(
        static_cast<size_t>(g.parts));
    HIVE_RETURN_IF_ERROR(repartition(build_run, right_keys_, ".b", &sub_build));
    if (probe_run)
      HIVE_RETURN_IF_ERROR(repartition(probe_run, left_keys_, ".p", &sub_probe));
    for (int p = 0; p < g.parts; ++p)
      HIVE_RETURN_IF_ERROR(
          JoinPartitionPair(depth + 1, sub_build[static_cast<size_t>(p)].get(),
                            sub_probe[static_cast<size_t>(p)].get()));
    return Status::OK();
  }

  HIVE_RETURN_IF_ERROR(RebuildTableOverBuild());

  std::unique_ptr<SpillBatchWriter> out_run;
  if (probe_run) {
    SpillBatchReader reader(ctx_, *probe_run);
    RowBatch chunk;
    std::vector<uint64_t> seqs;
    std::vector<uint64_t> out_seqs;
    for (;;) {
      HIVE_RETURN_IF_ERROR(ctx_->CheckInterrupted());
      HIVE_ASSIGN_OR_RETURN(bool more, reader.NextBatch(&chunk, &seqs));
      if (!more) break;
      bool emitted = false;
      out_seqs.clear();
      HIVE_ASSIGN_OR_RETURN(RowBatch out,
                            ProbeBatch(chunk, &emitted, &seqs, &out_seqs));
      for (size_t r = 0; r < out.num_rows(); ++r) {
        if (!out_run)
          out_run = std::make_unique<SpillBatchWriter>(
              ctx_, g.prefix + ".out" + std::to_string(g.stream_counter++),
              *out_schema_, true);
        HIVE_RETURN_IF_ERROR(out_run->AppendBatchRow(out, r, out_seqs[r]));
      }
    }
  }
  if (out_run) {
    HIVE_RETURN_IF_ERROR(out_run->Finish());
    g.bytes += out_run->bytes_written();
    g.output_runs.push_back(std::move(out_run));
  }

  if (full && build_.num_rows() > 0) {
    // Unmatched build rows, tagged with their *global* build sequence so
    // the tail phase merges into one build-order stream across partitions.
    RowBatch tail(*out_schema_);
    std::vector<uint64_t> tail_seqs;
    size_t tail_rows = 0;
    for (size_t r = 0; r < build_.num_rows(); ++r) {
      if (matched_[r].load(std::memory_order_relaxed)) continue;
      for (size_t c = 0; c < left_width_; ++c) tail.column(c)->AppendNull();
      for (size_t c = 0; c < build_.num_columns(); ++c)
        tail.column(left_width_ + c)->AppendFrom(*build_.column(c), r);
      tail_seqs.push_back(grace_build_seqs_[r]);
      ++tail_rows;
    }
    tail.set_num_rows(tail_rows);
    if (tail_rows > 0) {
      auto tail_run = std::make_unique<SpillBatchWriter>(
          ctx_, g.prefix + ".tail" + std::to_string(g.stream_counter++),
          *out_schema_, true);
      for (size_t r = 0; r < tail_rows; ++r)
        HIVE_RETURN_IF_ERROR(tail_run->AppendBatchRow(tail, r, tail_seqs[r]));
      HIVE_RETURN_IF_ERROR(tail_run->Finish());
      g.bytes += tail_run->bytes_written();
      g.tail_runs.push_back(std::move(tail_run));
    }
  }

  // Drop pair-local state before the next pair.
  build_ = RowBatch(g.build_schema);
  grace_build_seqs_.clear();
  build_key_cols_.clear();
  matched_.reset();
  reservation_.Release();
  return Status::OK();
}

Result<RowBatch> HashJoinCore::GraceNextOutput(bool* done) {
  *done = false;
  GraceState& g = *grace_;
  const size_t limit =
      ctx_->config ? static_cast<size_t>(ctx_->config->vector_batch_size) : 1024;
  for (;;) {
    HIVE_RETURN_IF_ERROR(ctx_->CheckInterrupted());
    if (!g.merge_armed) {
      g.merge_armed = true;
      HIVE_RETURN_IF_ERROR(g.Arm(ctx_, g.output_runs));
      if (!g.cursors.empty())
        CountSpillMetric(ctx_, obs::metric::kSpillMergePasses, 1);
    }
    HIVE_ASSIGN_OR_RETURN(RowBatch out, g.MergeStep(*out_schema_, limit));
    if (out.num_rows() > 0) return out;
    if (!g.tail_phase) {
      g.tail_phase = true;
      HIVE_RETURN_IF_ERROR(g.Arm(ctx_, g.tail_runs));
      if (!g.cursors.empty())
        CountSpillMetric(ctx_, obs::metric::kSpillMergePasses, 1);
      continue;
    }
    *done = true;
    return RowBatch(*out_schema_);
  }
}

bool HashJoinCore::KeysEqual(const std::vector<ColumnVectorPtr>& probe_cols,
                             int32_t probe_row, int32_t build_row) const {
  for (size_t k = 0; k < key_cmp_.size(); ++k) {
    const ColumnVector& p = *probe_cols[k];
    const ColumnVector& b = *build_key_cols_[k];
    size_t pr = static_cast<size_t>(probe_row), br = static_cast<size_t>(build_row);
    switch (key_cmp_[k]) {
      case KeyCmp::kI64:
        if (p.GetI64(pr) != b.GetI64(br)) return false;
        break;
      case KeyCmp::kF64:
        if (p.GetF64(pr) != b.GetF64(br)) return false;
        break;
      case KeyCmp::kStr:
        if (p.GetStr(pr) != b.GetStr(br)) return false;
        break;
      case KeyCmp::kBoxed:
        if (Value::Compare(p.GetValue(pr), b.GetValue(br)) != 0) return false;
        break;
    }
  }
  return true;
}

Result<RowBatch> HashJoinCore::ProbeBatch(const RowBatch& batch, bool* emitted,
                                          const std::vector<uint64_t>* in_seqs,
                                          std::vector<uint64_t>* out_seqs) {
  *emitted = false;
  const bool semi = join_type_ == TableRef::JoinType::kSemi;
  const bool anti = join_type_ == TableRef::JoinType::kAnti;
  const bool left_outer = join_type_ == TableRef::JoinType::kLeft ||
                          join_type_ == TableRef::JoinType::kFull;

  // Vectorized probe-key evaluation + hashing over the batch's physical
  // rows (selection applied below, per the vector_eval contract).
  std::vector<ColumnVectorPtr> probe_cols;
  std::vector<uint64_t> hashes;
  std::vector<uint8_t> valid;
  if (!left_keys_.empty()) {
    for (const ExprPtr& k : left_keys_) {
      HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*k, batch));
      probe_cols.push_back(std::move(col));
    }
    HashKeyColumns(probe_cols, batch.num_rows(), &hashes, &valid);
  }

  RowBatch out(*out_schema_);
  size_t out_rows = 0;
  uint64_t cur_seq = 0;
  auto emit = [&](int32_t left_row, int32_t right_row) {
    ++out_rows;
    if (out_seqs) out_seqs->push_back(cur_seq);
    for (size_t c = 0; c < left_width_; ++c)
      out.column(c)->AppendFrom(*batch.column(c), static_cast<size_t>(left_row));
    if (semi || anti) return;
    for (size_t c = 0; c < build_.num_columns(); ++c) {
      if (right_row < 0) {
        out.column(left_width_ + c)->AppendNull();
      } else {
        out.column(left_width_ + c)
            ->AppendFrom(*build_.column(c), static_cast<size_t>(right_row));
      }
    }
  };

  int64_t hits = 0, misses = 0;
  std::vector<int32_t> candidates;
  std::vector<Value> left_row_boxed;  // only materialized for residuals
  for (size_t i = 0; i < batch.SelectedSize(); ++i) {
    int32_t src = batch.SelectedRow(i);
    if (in_seqs) cur_seq = (*in_seqs)[static_cast<size_t>(src)];
    candidates.clear();
    if (left_keys_.empty()) {
      // No equi keys: every build row is a candidate (nested loop / cross).
      candidates.reserve(build_.num_rows());
      for (size_t r = 0; r < build_.num_rows(); ++r)
        candidates.push_back(static_cast<int32_t>(r));
    } else if (valid[static_cast<size_t>(src)]) {  // null keys never match
      if (perfect_.engaged()) {
        int32_t r = perfect_.Lookup(probe_cols[0]->GetI64(static_cast<size_t>(src)));
        if (r >= 0) candidates.push_back(r);
      } else {
        for (FlatJoinTable::Iterator it =
                 table_.Probe(hashes[static_cast<size_t>(src)]);
             it.valid(); it.Advance()) {
          // Chains filter by exact hash; verify keys (hash collisions).
          if (KeysEqual(probe_cols, src, it.row())) candidates.push_back(it.row());
        }
        // Chains are newest-first; emit matches in build-row order.
        std::reverse(candidates.begin(), candidates.end());
      }
    }

    bool matched = false;
    for (int32_t r : candidates) {
      if (residual_) {
        // Evaluate residual over concat(left, right), boxed (rare path).
        left_row_boxed.clear();
        for (size_t c = 0; c < left_width_; ++c)
          left_row_boxed.push_back(
              batch.column(c)->GetValue(static_cast<size_t>(src)));
        for (size_t c = 0; c < build_.num_columns(); ++c)
          left_row_boxed.push_back(build_.column(c)->GetValue(static_cast<size_t>(r)));
        HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*residual_, &left_row_boxed));
        if (!IsTrue(v)) continue;
      }
      matched = true;
      matched_[static_cast<size_t>(r)].store(1, std::memory_order_relaxed);
      if (semi || anti) break;
      emit(src, r);
    }
    if (matched) ++hits; else ++misses;
    if (semi && matched) emit(src, -1);
    if (anti && !matched) emit(src, -1);
    if (left_outer && !matched) emit(src, -1);
  }
  probe_hits_.fetch_add(hits, std::memory_order_relaxed);
  probe_misses_.fetch_add(misses, std::memory_order_relaxed);
  if (metric_probe_hits_) metric_probe_hits_->Add(hits);
  if (metric_probe_misses_) metric_probe_misses_->Add(misses);
  out.set_num_rows(out_rows);
  if (out.num_rows() > 0) *emitted = true;
  return out;
}

Result<RowBatch> HashJoinCore::EmitUnmatchedRight() {
  RowBatch out(*out_schema_);
  size_t out_rows = 0;
  for (size_t r = 0; r < build_.num_rows(); ++r) {
    if (matched_[r].load(std::memory_order_relaxed)) continue;
    ++out_rows;
    for (size_t c = 0; c < left_width_; ++c) out.column(c)->AppendNull();
    for (size_t c = 0; c < build_.num_columns(); ++c)
      out.column(left_width_ + c)->AppendFrom(*build_.column(c), r);
  }
  out.set_num_rows(out_rows);
  return out;
}

void HashJoinCore::AnnotateProfile() {
  if (!profile_node_) return;
  std::string& d = profile_node_->detail;
  if (!d.empty()) d += ", ";
  d += "build_rows=" +
       std::to_string(grace_ ? grace_->build_seq : build_.num_rows());
  if (grace_) {
    d += " spill=grace partitions=" + std::to_string(grace_->partitions_spawned) +
         " spill_bytes=" + std::to_string(grace_->bytes) +
         " max_depth=" + std::to_string(grace_->max_depth);
  } else if (perfect_.engaged()) {
    d += " perfect_hash range=" + std::to_string(perfect_.range());
  } else if (table_.num_slots() > 0) {
    char load[32];
    std::snprintf(load, sizeof load, "%.2f", table_.load_factor());
    d += " slots=" + std::to_string(table_.num_slots()) + " load=" + load;
  }
  d += " probe_hits=" + std::to_string(probe_hits_.load(std::memory_order_relaxed)) +
       " probe_misses=" +
       std::to_string(probe_misses_.load(std::memory_order_relaxed));
}

// --- HashJoinOperator ---

HashJoinOperator::HashJoinOperator(ExecContext* ctx, OperatorPtr left,
                                   OperatorPtr right, TableRef::JoinType join_type,
                                   ExprPtr condition, Schema schema)
    : Operator(ctx),
      left_(std::move(left)),
      right_(std::move(right)),
      schema_(std::move(schema)),
      core_(ctx, join_type, std::move(condition), &schema_),
      is_full_join_(join_type == TableRef::JoinType::kFull) {}

Status HashJoinOperator::Open() {
  HIVE_RETURN_IF_ERROR(right_->Open());
  HIVE_RETURN_IF_ERROR(core_.BindCondition(left_->schema()));
  HIVE_RETURN_IF_ERROR(core_.Build(right_.get()));
  // The probe subtree opens only once the build side finalized: a build
  // error or deadline kill returns above without ever touching it.
  return left_->Open();
}

Result<RowBatch> HashJoinOperator::Next(bool* done) {
  *done = false;
  if (core_.grace_active()) {
    // Grace mode: route the whole probe side into hash partitions (modeled
    // CPU charges once, inside GraceFinishProbe), join the partition pairs,
    // then stream the sequence-merged output.
    if (!exhausted_left_) {
      bool left_done = false;
      for (;;) {
        HIVE_RETURN_IF_ERROR(CheckCancelled());
        HIVE_ASSIGN_OR_RETURN(RowBatch batch, left_->Next(&left_done));
        if (left_done) break;
        HIVE_RETURN_IF_ERROR(core_.GraceAddProbeBatch(batch));
      }
      exhausted_left_ = true;
      HIVE_RETURN_IF_ERROR(core_.GraceFinishProbe());
    }
    HIVE_ASSIGN_OR_RETURN(RowBatch out, core_.GraceNextOutput(done));
    if (!*done) rows_produced_ += static_cast<int64_t>(out.num_rows());
    return out;
  }
  for (;;) {
    HIVE_RETURN_IF_ERROR(CheckCancelled());
    if (!exhausted_left_) {
      bool left_done = false;
      HIVE_ASSIGN_OR_RETURN(RowBatch batch, left_->Next(&left_done));
      if (left_done) {
        exhausted_left_ = true;
        continue;
      }
      bool emitted = false;
      HIVE_ASSIGN_OR_RETURN(RowBatch out, core_.ProbeBatch(batch, &emitted));
      // Serial probe charges modeled CPU for every probed row (a parallel
      // probe charges only its slowest worker).
      if (ctx_->clock)
        ctx_->clock->Charge(static_cast<int64_t>(batch.SelectedSize()) *
                            core_.probe_ns_per_row() / 1000);
      if (emitted) {
        rows_produced_ += static_cast<int64_t>(out.num_rows());
        return out;
      }
      continue;
    }
    if (is_full_join_ && !emitted_unmatched_) {
      emitted_unmatched_ = true;
      HIVE_ASSIGN_OR_RETURN(RowBatch out, core_.EmitUnmatchedRight());
      if (out.num_rows() > 0) {
        rows_produced_ += static_cast<int64_t>(out.num_rows());
        return out;
      }
    }
    *done = true;
    return RowBatch();
  }
}

Status HashJoinOperator::Close() {
  core_.AnnotateProfile();
  HIVE_RETURN_IF_ERROR(left_->Close());
  return right_->Close();
}

}  // namespace hive
