#include "common/hash.h"
#include "exec/operators.h"
#include "exec/vector_eval.h"
#include "optimizer/expr_eval.h"

namespace hive {

namespace {

void SplitAnd(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e && e->kind == ExprKind::kBinary && e->bin_op == BinaryOp::kAnd) {
    SplitAnd(e->children[0], out);
    SplitAnd(e->children[1], out);
    return;
  }
  if (e) out->push_back(e);
}

bool BindingsBelow(const ExprPtr& e, int width) {
  if (!e) return true;
  if (e->kind == ExprKind::kColumnRef) return e->binding < width;
  for (const ExprPtr& c : e->children)
    if (!BindingsBelow(c, width)) return false;
  return true;
}

bool BindingsAtOrAbove(const ExprPtr& e, int width) {
  if (!e) return true;
  if (e->kind == ExprKind::kColumnRef) return e->binding >= width;
  for (const ExprPtr& c : e->children)
    if (!BindingsAtOrAbove(c, width)) return false;
  return true;
}

ExprPtr ShiftClone(const ExprPtr& e, int delta) {
  ExprPtr out = CloneExpr(e);
  std::function<void(const ExprPtr&)> shift = [&](const ExprPtr& x) {
    if (!x) return;
    if (x->kind == ExprKind::kColumnRef && x->binding >= 0) x->binding += delta;
    for (const ExprPtr& c : x->children) shift(c);
  };
  shift(out);
  return out;
}

uint64_t HashKeys(const std::vector<Value>& keys) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : keys) h = HashCombine(h, v.Hash());
  return h;
}

}  // namespace

HashJoinOperator::HashJoinOperator(ExecContext* ctx, OperatorPtr left,
                                   OperatorPtr right, TableRef::JoinType join_type,
                                   ExprPtr condition, Schema schema)
    : Operator(ctx),
      left_(std::move(left)),
      right_(std::move(right)),
      join_type_(join_type),
      condition_(std::move(condition)),
      schema_(std::move(schema)) {}

Status HashJoinOperator::Open() {
  HIVE_RETURN_IF_ERROR(right_->Open());
  HIVE_RETURN_IF_ERROR(left_->Open());
  // Split the condition into equi keys and a residual.
  int left_width = static_cast<int>(left_->schema().num_fields());
  std::vector<ExprPtr> conjuncts;
  SplitAnd(condition_, &conjuncts);
  std::vector<ExprPtr> residual_conjuncts;
  for (const ExprPtr& c : conjuncts) {
    if (c->kind == ExprKind::kLiteral) continue;  // TRUE markers
    if (c->kind == ExprKind::kBinary && c->bin_op == BinaryOp::kEq) {
      const ExprPtr& a = c->children[0];
      const ExprPtr& b = c->children[1];
      if (BindingsBelow(a, left_width) && BindingsAtOrAbove(b, left_width)) {
        left_keys_.push_back(a);
        right_keys_.push_back(ShiftClone(b, -left_width));
        continue;
      }
      if (BindingsBelow(b, left_width) && BindingsAtOrAbove(a, left_width)) {
        left_keys_.push_back(b);
        right_keys_.push_back(ShiftClone(a, -left_width));
        continue;
      }
    }
    residual_conjuncts.push_back(c);
  }
  for (const ExprPtr& c : residual_conjuncts) {
    if (!residual_) {
      residual_ = c;
    } else {
      residual_ = MakeBinary(BinaryOp::kAnd, residual_, c);
      residual_->type = DataType::Boolean();
    }
  }
  return BuildHashTable();
}

Status HashJoinOperator::BuildHashTable() {
  build_ = RowBatch(right_->schema());
  bool done = false;
  size_t build_rows = 0;
  for (;;) {
    HIVE_RETURN_IF_ERROR(CheckCancelled());
    HIVE_ASSIGN_OR_RETURN(RowBatch batch, right_->Next(&done));
    if (done) break;
    build_rows += batch.SelectedSize();
    for (size_t i = 0; i < batch.SelectedSize(); ++i) {
      int32_t row = batch.SelectedRow(i);
      for (size_t c = 0; c < build_.num_columns(); ++c)
        build_.column(c)->AppendFrom(*batch.column(c), row);
    }
  }
  build_.set_num_rows(build_rows);
  if (static_cast<int64_t>(build_.num_rows()) > ctx_->join_build_row_limit)
    return Status::ExecError("hash join build side exceeded memory limit (" +
                             std::to_string(build_.num_rows()) + " rows)");
  // Hash the build rows by key.
  for (size_t r = 0; r < build_.num_rows(); ++r) {
    std::vector<Value> keys;
    keys.reserve(right_keys_.size());
    bool null_key = false;
    std::vector<Value> row;
    for (size_t c = 0; c < build_.num_columns(); ++c)
      row.push_back(build_.column(c)->GetValue(r));
    for (const ExprPtr& k : right_keys_) {
      HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*k, &row));
      if (v.is_null()) null_key = true;
      keys.push_back(std::move(v));
    }
    if (null_key) continue;  // null keys never match in equi joins
    table_.emplace(HashKeys(keys), static_cast<int32_t>(r));
  }
  right_matched_.assign(build_.num_rows(), 0);
  built_ = true;
  HIVE_RETURN_IF_ERROR(ctx_->OnStageBoundary(build_.ByteSize()));
  return Status::OK();
}

Result<RowBatch> HashJoinOperator::ProbeBatch(const RowBatch& batch, bool* emitted) {
  *emitted = false;
  const bool semi = join_type_ == TableRef::JoinType::kSemi;
  const bool anti = join_type_ == TableRef::JoinType::kAnti;
  const bool left_outer = join_type_ == TableRef::JoinType::kLeft ||
                          join_type_ == TableRef::JoinType::kFull;
  const bool cross = join_type_ == TableRef::JoinType::kCross;
  size_t left_width = left_->schema().num_fields();

  RowBatch out(schema_);
  size_t out_rows = 0;
  auto emit = [&](const std::vector<Value>& left_row, int32_t right_row) {
    ++out_rows;
    for (size_t c = 0; c < left_width; ++c)
      out.column(c)->AppendValue(left_row[c]);
    if (semi || anti) return;
    for (size_t c = 0; c < build_.num_columns(); ++c) {
      if (right_row < 0) {
        out.column(left_width + c)->AppendNull();
      } else {
        out.column(left_width + c)->AppendFrom(*build_.column(c), right_row);
      }
    }
  };

  for (size_t i = 0; i < batch.SelectedSize(); ++i) {
    int32_t src = batch.SelectedRow(i);
    std::vector<Value> left_row;
    left_row.reserve(left_width);
    for (size_t c = 0; c < batch.num_columns(); ++c)
      left_row.push_back(batch.column(c)->GetValue(src));

    // Candidate right rows.
    std::vector<int32_t> candidates;
    bool null_key = false;
    if (!left_keys_.empty()) {
      std::vector<Value> keys;
      for (const ExprPtr& k : left_keys_) {
        HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*k, &left_row));
        if (v.is_null()) null_key = true;
        keys.push_back(std::move(v));
      }
      if (!null_key) {
        auto range = table_.equal_range(HashKeys(keys));
        for (auto it = range.first; it != range.second; ++it) {
          // Verify exact key equality (hash collisions).
          bool equal = true;
          std::vector<Value> right_row;
          for (size_t c = 0; c < build_.num_columns(); ++c)
            right_row.push_back(build_.column(c)->GetValue(it->second));
          for (size_t k = 0; k < right_keys_.size() && equal; ++k) {
            HIVE_ASSIGN_OR_RETURN(Value rv, EvalExpr(*right_keys_[k], &right_row));
            if (rv.is_null() || Value::Compare(keys[k], rv) != 0) equal = false;
          }
          if (equal) candidates.push_back(it->second);
        }
      }
    } else if (!cross || build_.num_rows() > 0) {
      // No equi keys: every build row is a candidate (nested loop).
      candidates.reserve(build_.num_rows());
      for (size_t r = 0; r < build_.num_rows(); ++r)
        candidates.push_back(static_cast<int32_t>(r));
    }

    bool matched = false;
    for (int32_t r : candidates) {
      if (residual_) {
        // Evaluate residual over concat(left, right).
        std::vector<Value> combined = left_row;
        for (size_t c = 0; c < build_.num_columns(); ++c)
          combined.push_back(build_.column(c)->GetValue(r));
        HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*residual_, &combined));
        if (!IsTrue(v)) continue;
      }
      matched = true;
      if (static_cast<size_t>(r) < right_matched_.size()) right_matched_[r] = 1;
      if (semi) break;
      if (anti) break;
      emit(left_row, r);
    }
    if (semi && matched) emit(left_row, -1);
    if (anti && !matched) emit(left_row, -1);
    if (left_outer && !matched) emit(left_row, -1);
  }
  out.set_num_rows(out_rows);
  if (out.num_rows() > 0) {
    *emitted = true;
    rows_produced_ += static_cast<int64_t>(out.num_rows());
  }
  return out;
}

Result<RowBatch> HashJoinOperator::EmitUnmatchedRight() {
  RowBatch out(schema_);
  size_t left_width = left_->schema().num_fields();
  size_t out_rows = 0;
  for (size_t r = 0; r < build_.num_rows(); ++r) {
    if (right_matched_[r]) continue;
    ++out_rows;
    for (size_t c = 0; c < left_width; ++c) out.column(c)->AppendNull();
    for (size_t c = 0; c < build_.num_columns(); ++c)
      out.column(left_width + c)->AppendFrom(*build_.column(c), r);
  }
  out.set_num_rows(out_rows);
  rows_produced_ += static_cast<int64_t>(out.num_rows());
  return out;
}

Result<RowBatch> HashJoinOperator::Next(bool* done) {
  *done = false;
  for (;;) {
    HIVE_RETURN_IF_ERROR(CheckCancelled());
    if (!exhausted_left_) {
      bool left_done = false;
      HIVE_ASSIGN_OR_RETURN(RowBatch batch, left_->Next(&left_done));
      if (left_done) {
        exhausted_left_ = true;
        continue;
      }
      bool emitted = false;
      HIVE_ASSIGN_OR_RETURN(RowBatch out, ProbeBatch(batch, &emitted));
      if (emitted) return out;
      continue;
    }
    if (join_type_ == TableRef::JoinType::kFull && !emitted_unmatched_) {
      emitted_unmatched_ = true;
      HIVE_ASSIGN_OR_RETURN(RowBatch out, EmitUnmatchedRight());
      if (out.num_rows() > 0) return out;
    }
    *done = true;
    return RowBatch();
  }
}

Status HashJoinOperator::Close() {
  HIVE_RETURN_IF_ERROR(left_->Close());
  return right_->Close();
}

}  // namespace hive
