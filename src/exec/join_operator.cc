#include <algorithm>
#include <cstdio>
#include <future>

#include "common/hash.h"
#include "exec/operators.h"
#include "exec/vector_eval.h"
#include "optimizer/expr_eval.h"

namespace hive {

namespace {

void SplitAnd(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e && e->kind == ExprKind::kBinary && e->bin_op == BinaryOp::kAnd) {
    SplitAnd(e->children[0], out);
    SplitAnd(e->children[1], out);
    return;
  }
  if (e) out->push_back(e);
}

bool BindingsBelow(const ExprPtr& e, int width) {
  if (!e) return true;
  if (e->kind == ExprKind::kColumnRef) return e->binding < width;
  for (const ExprPtr& c : e->children)
    if (!BindingsBelow(c, width)) return false;
  return true;
}

bool BindingsAtOrAbove(const ExprPtr& e, int width) {
  if (!e) return true;
  if (e->kind == ExprKind::kColumnRef) return e->binding >= width;
  for (const ExprPtr& c : e->children)
    if (!BindingsAtOrAbove(c, width)) return false;
  return true;
}

ExprPtr ShiftClone(const ExprPtr& e, int delta) {
  ExprPtr out = CloneExpr(e);
  std::function<void(const ExprPtr&)> shift = [&](const ExprPtr& x) {
    if (!x) return;
    if (x->kind == ExprKind::kColumnRef && x->binding >= 0) x->binding += delta;
    for (const ExprPtr& c : x->children) shift(c);
  };
  shift(out);
  return out;
}

/// Extracts the equi-key pairs and residual conjuncts of a join condition
/// given the probe side's width. Shared by runtime binding and the
/// plan-time perfect-hash eligibility check.
void SplitJoinCondition(const ExprPtr& condition, int left_width,
                        std::vector<ExprPtr>* left_keys,
                        std::vector<ExprPtr>* right_keys,
                        std::vector<ExprPtr>* residual_conjuncts) {
  std::vector<ExprPtr> conjuncts;
  SplitAnd(condition, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    if (c->kind == ExprKind::kLiteral) continue;  // TRUE markers
    if (c->kind == ExprKind::kBinary && c->bin_op == BinaryOp::kEq) {
      const ExprPtr& a = c->children[0];
      const ExprPtr& b = c->children[1];
      if (BindingsBelow(a, left_width) && BindingsAtOrAbove(b, left_width)) {
        left_keys->push_back(a);
        right_keys->push_back(ShiftClone(b, -left_width));
        continue;
      }
      if (BindingsBelow(b, left_width) && BindingsAtOrAbove(a, left_width)) {
        left_keys->push_back(b);
        right_keys->push_back(ShiftClone(a, -left_width));
        continue;
      }
    }
    residual_conjuncts->push_back(c);
  }
}

}  // namespace

// --- HashJoinCore ---

HashJoinCore::HashJoinCore(ExecContext* ctx, TableRef::JoinType join_type,
                           ExprPtr condition, const Schema* out_schema)
    : ctx_(ctx),
      join_type_(join_type),
      condition_(std::move(condition)),
      out_schema_(out_schema) {}

bool HashJoinCore::PerfectHashEligible(const ExprPtr& condition, int left_width) {
  std::vector<ExprPtr> left_keys, right_keys, residual;
  SplitJoinCondition(condition, left_width, &left_keys, &right_keys, &residual);
  if (left_keys.size() != 1) return false;
  TypeKind lk = left_keys[0]->type.kind;
  TypeKind rk = right_keys[0]->type.kind;
  // Same non-decimal integer kind on both sides: array-index equality then
  // coincides with Value::Compare (cross-kind integer comparisons do not —
  // BIGINT 7 never equals DATE 7).
  if (lk != rk) return false;
  return lk == TypeKind::kBigint || lk == TypeKind::kDate ||
         lk == TypeKind::kTimestamp;
}

Status HashJoinCore::BindCondition(const Schema& left_schema) {
  left_width_ = left_schema.num_fields();
  std::vector<ExprPtr> residual_conjuncts;
  SplitJoinCondition(condition_, static_cast<int>(left_width_), &left_keys_,
                     &right_keys_, &residual_conjuncts);
  for (const ExprPtr& c : residual_conjuncts) {
    if (!residual_) {
      residual_ = c;
    } else {
      residual_ = MakeBinary(BinaryOp::kAnd, residual_, c);
      residual_->type = DataType::Boolean();
    }
  }
  // Typed comparison plan per key pair; anything without a safe fast path
  // (cross-kind numerics, cross-scale decimals) verifies boxed through
  // Value::Compare, which is what the hash contract is defined against.
  key_cmp_.clear();
  for (size_t k = 0; k < left_keys_.size(); ++k) {
    const DataType& lt = left_keys_[k]->type;
    const DataType& rt = right_keys_[k]->type;
    KeyCmp cmp = KeyCmp::kBoxed;
    if (lt.kind == rt.kind) {
      switch (lt.kind) {
        case TypeKind::kBigint:
        case TypeKind::kDate:
        case TypeKind::kTimestamp:
        case TypeKind::kBoolean:
          cmp = KeyCmp::kI64;
          break;
        case TypeKind::kDecimal:
          if (lt.scale == rt.scale) cmp = KeyCmp::kI64;
          break;
        case TypeKind::kDouble:
          cmp = KeyCmp::kF64;
          break;
        case TypeKind::kString:
          cmp = KeyCmp::kStr;
          break;
        default:
          break;
      }
    }
    key_cmp_.push_back(cmp);
  }
  return Status::OK();
}

Status HashJoinCore::Build(Operator* build_child) {
  build_ = RowBatch(build_child->schema());
  bool done = false;
  size_t build_rows = 0;
  for (;;) {
    HIVE_RETURN_IF_ERROR(ctx_->CheckInterrupted());
    HIVE_ASSIGN_OR_RETURN(RowBatch batch, build_child->Next(&done));
    if (done) break;
    build_rows += batch.SelectedSize();
    for (size_t i = 0; i < batch.SelectedSize(); ++i) {
      int32_t row = batch.SelectedRow(i);
      for (size_t c = 0; c < build_.num_columns(); ++c)
        build_.column(c)->AppendFrom(*batch.column(c), row);
    }
  }
  build_.set_num_rows(build_rows);
  if (static_cast<int64_t>(build_.num_rows()) > ctx_->join_build_row_limit)
    return Status::ExecError("hash join build side exceeded memory limit (" +
                             std::to_string(build_.num_rows()) + " rows)");
  const size_t n = build_.num_rows();
  matched_ = std::unique_ptr<std::atomic<uint8_t>[]>(new std::atomic<uint8_t>[n]);
  for (size_t i = 0; i < n; ++i) matched_[i].store(0, std::memory_order_relaxed);

  obs::Counter* metric_perfect = nullptr;
  if (ctx_->metrics) {
    ctx_->metrics->counter("exec.join.build_rows")->Add(static_cast<int64_t>(n));
    metric_perfect = ctx_->metrics->counter("exec.join.perfect_hash");
    metric_probe_hits_ = ctx_->metrics->counter("exec.join.probe.hits");
    metric_probe_misses_ = ctx_->metrics->counter("exec.join.probe.misses");
  }

  if (!right_keys_.empty()) {
    // Vectorized key evaluation + column-wise hashing over the dense build
    // batch: no per-row boxed rows, no per-row key vectors.
    build_key_cols_.clear();
    for (const ExprPtr& k : right_keys_) {
      HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*k, build_));
      build_key_cols_.push_back(std::move(col));
    }
    std::vector<uint64_t> hashes;
    std::vector<uint8_t> valid;
    HashKeyColumns(build_key_cols_, n, &hashes, &valid);

    const int64_t ns_per_row = ctx_->config->join_cpu_ns_per_row;
    bool perfect_built = false;
    if (perfect_hint_ && ctx_->config->perfect_hash_join_enabled &&
        right_keys_.size() == 1 && key_cmp_[0] == KeyCmp::kI64 && n > 0) {
      // Build finalize decides from min/max whether the single integer key
      // domain is dense enough for an array table; duplicates make TryBuild
      // bail back to the generic path.
      const std::vector<int64_t>& keys = build_key_cols_[0]->i64_data();
      int64_t mn = 0, mx = 0;
      size_t cnt = 0;
      for (size_t r = 0; r < n; ++r) {
        if (!valid[r]) continue;
        if (cnt == 0 || keys[r] < mn) mn = keys[r];
        if (cnt == 0 || keys[r] > mx) mx = keys[r];
        ++cnt;
      }
      if (cnt > 0) {
        uint64_t range = static_cast<uint64_t>(mx) - static_cast<uint64_t>(mn) + 1;
        // Density rule: the array may be at most 2x the build rows (plus a
        // small constant for tiny tables), and never outlandishly large.
        if (range <= 2 * cnt + 1024 && range <= (1u << 22))
          perfect_built = perfect_.TryBuild(keys, valid, mn, mx);
      }
    }
    if (perfect_built) {
      if (metric_perfect) metric_perfect->Inc();
      if (ctx_->clock)
        ctx_->clock->Charge(static_cast<int64_t>(n) * ns_per_row / 1000);
    } else {
      // Partitioned parallel build: partitions share nothing (a hash's top
      // bits pick its partition), so workers claim partitions from an atomic
      // counter and insert lock-free. Chain order within a partition depends
      // only on row order, which every partition walks ascending — the table
      // is identical at any worker or partition count.
      bool want_parallel = ctx_->submit_worker != nullptr &&
                           ctx_->config->parallel_join_enabled &&
                           ctx_->mode != RuntimeMode::kMapReduce &&
                           ctx_->max_parallel_workers > 1;
      int target = want_parallel ? std::min(ctx_->max_parallel_workers, 16) : 1;
      table_.Init(hashes, valid, target);
      const int parts = table_.num_partitions();
      const int workers = want_parallel ? std::min(ctx_->max_parallel_workers, parts) : 1;
      std::atomic<size_t> next_part{0};
      std::vector<int64_t> busy_ns(static_cast<size_t>(workers), 0);
      auto build_loop = [&](int w) -> Status {
        for (;;) {
          size_t p = next_part.fetch_add(1, std::memory_order_relaxed);
          if (p >= static_cast<size_t>(parts)) break;
          table_.BuildPartition(static_cast<int>(p), hashes, valid);
          busy_ns[static_cast<size_t>(w)] +=
              static_cast<int64_t>(table_.num_entries_in(static_cast<int>(p))) *
              ns_per_row;
        }
        return Status::OK();
      };
      std::vector<std::future<Status>> futures;
      for (int w = 1; w < workers; ++w)
        futures.push_back(ctx_->submit_worker([&build_loop, w] { return build_loop(w); }));
      Status status = build_loop(0);
      for (auto& f : futures) {
        Status s = f.get();
        if (status.ok() && !s.ok()) status = s;
      }
      HIVE_RETURN_IF_ERROR(status);
      // Like scan CPU, build CPU charges the critical path: the slowest
      // worker in a parallel build, every insert in a serial one.
      int64_t critical_ns = 0;
      for (int64_t b : busy_ns) critical_ns = std::max(critical_ns, b);
      if (ctx_->clock) ctx_->clock->Charge(critical_ns / 1000);
    }
  }
  return ctx_->OnStageBoundary(build_.ByteSize());
}

bool HashJoinCore::KeysEqual(const std::vector<ColumnVectorPtr>& probe_cols,
                             int32_t probe_row, int32_t build_row) const {
  for (size_t k = 0; k < key_cmp_.size(); ++k) {
    const ColumnVector& p = *probe_cols[k];
    const ColumnVector& b = *build_key_cols_[k];
    size_t pr = static_cast<size_t>(probe_row), br = static_cast<size_t>(build_row);
    switch (key_cmp_[k]) {
      case KeyCmp::kI64:
        if (p.GetI64(pr) != b.GetI64(br)) return false;
        break;
      case KeyCmp::kF64:
        if (p.GetF64(pr) != b.GetF64(br)) return false;
        break;
      case KeyCmp::kStr:
        if (p.GetStr(pr) != b.GetStr(br)) return false;
        break;
      case KeyCmp::kBoxed:
        if (Value::Compare(p.GetValue(pr), b.GetValue(br)) != 0) return false;
        break;
    }
  }
  return true;
}

Result<RowBatch> HashJoinCore::ProbeBatch(const RowBatch& batch, bool* emitted) {
  *emitted = false;
  const bool semi = join_type_ == TableRef::JoinType::kSemi;
  const bool anti = join_type_ == TableRef::JoinType::kAnti;
  const bool left_outer = join_type_ == TableRef::JoinType::kLeft ||
                          join_type_ == TableRef::JoinType::kFull;

  // Vectorized probe-key evaluation + hashing over the batch's physical
  // rows (selection applied below, per the vector_eval contract).
  std::vector<ColumnVectorPtr> probe_cols;
  std::vector<uint64_t> hashes;
  std::vector<uint8_t> valid;
  if (!left_keys_.empty()) {
    for (const ExprPtr& k : left_keys_) {
      HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*k, batch));
      probe_cols.push_back(std::move(col));
    }
    HashKeyColumns(probe_cols, batch.num_rows(), &hashes, &valid);
  }

  RowBatch out(*out_schema_);
  size_t out_rows = 0;
  auto emit = [&](int32_t left_row, int32_t right_row) {
    ++out_rows;
    for (size_t c = 0; c < left_width_; ++c)
      out.column(c)->AppendFrom(*batch.column(c), static_cast<size_t>(left_row));
    if (semi || anti) return;
    for (size_t c = 0; c < build_.num_columns(); ++c) {
      if (right_row < 0) {
        out.column(left_width_ + c)->AppendNull();
      } else {
        out.column(left_width_ + c)
            ->AppendFrom(*build_.column(c), static_cast<size_t>(right_row));
      }
    }
  };

  int64_t hits = 0, misses = 0;
  std::vector<int32_t> candidates;
  std::vector<Value> left_row_boxed;  // only materialized for residuals
  for (size_t i = 0; i < batch.SelectedSize(); ++i) {
    int32_t src = batch.SelectedRow(i);
    candidates.clear();
    if (left_keys_.empty()) {
      // No equi keys: every build row is a candidate (nested loop / cross).
      candidates.reserve(build_.num_rows());
      for (size_t r = 0; r < build_.num_rows(); ++r)
        candidates.push_back(static_cast<int32_t>(r));
    } else if (valid[static_cast<size_t>(src)]) {  // null keys never match
      if (perfect_.engaged()) {
        int32_t r = perfect_.Lookup(probe_cols[0]->GetI64(static_cast<size_t>(src)));
        if (r >= 0) candidates.push_back(r);
      } else {
        for (FlatJoinTable::Iterator it =
                 table_.Probe(hashes[static_cast<size_t>(src)]);
             it.valid(); it.Advance()) {
          // Chains filter by exact hash; verify keys (hash collisions).
          if (KeysEqual(probe_cols, src, it.row())) candidates.push_back(it.row());
        }
        // Chains are newest-first; emit matches in build-row order.
        std::reverse(candidates.begin(), candidates.end());
      }
    }

    bool matched = false;
    for (int32_t r : candidates) {
      if (residual_) {
        // Evaluate residual over concat(left, right), boxed (rare path).
        left_row_boxed.clear();
        for (size_t c = 0; c < left_width_; ++c)
          left_row_boxed.push_back(
              batch.column(c)->GetValue(static_cast<size_t>(src)));
        for (size_t c = 0; c < build_.num_columns(); ++c)
          left_row_boxed.push_back(build_.column(c)->GetValue(static_cast<size_t>(r)));
        HIVE_ASSIGN_OR_RETURN(Value v, EvalExpr(*residual_, &left_row_boxed));
        if (!IsTrue(v)) continue;
      }
      matched = true;
      matched_[static_cast<size_t>(r)].store(1, std::memory_order_relaxed);
      if (semi || anti) break;
      emit(src, r);
    }
    if (matched) ++hits; else ++misses;
    if (semi && matched) emit(src, -1);
    if (anti && !matched) emit(src, -1);
    if (left_outer && !matched) emit(src, -1);
  }
  probe_hits_.fetch_add(hits, std::memory_order_relaxed);
  probe_misses_.fetch_add(misses, std::memory_order_relaxed);
  if (metric_probe_hits_) metric_probe_hits_->Add(hits);
  if (metric_probe_misses_) metric_probe_misses_->Add(misses);
  out.set_num_rows(out_rows);
  if (out.num_rows() > 0) *emitted = true;
  return out;
}

Result<RowBatch> HashJoinCore::EmitUnmatchedRight() {
  RowBatch out(*out_schema_);
  size_t out_rows = 0;
  for (size_t r = 0; r < build_.num_rows(); ++r) {
    if (matched_[r].load(std::memory_order_relaxed)) continue;
    ++out_rows;
    for (size_t c = 0; c < left_width_; ++c) out.column(c)->AppendNull();
    for (size_t c = 0; c < build_.num_columns(); ++c)
      out.column(left_width_ + c)->AppendFrom(*build_.column(c), r);
  }
  out.set_num_rows(out_rows);
  return out;
}

void HashJoinCore::AnnotateProfile() {
  if (!profile_node_) return;
  std::string& d = profile_node_->detail;
  if (!d.empty()) d += ", ";
  d += "build_rows=" + std::to_string(build_.num_rows());
  if (perfect_.engaged()) {
    d += " perfect_hash range=" + std::to_string(perfect_.range());
  } else if (table_.num_slots() > 0) {
    char load[32];
    std::snprintf(load, sizeof load, "%.2f", table_.load_factor());
    d += " slots=" + std::to_string(table_.num_slots()) + " load=" + load;
  }
  d += " probe_hits=" + std::to_string(probe_hits_.load(std::memory_order_relaxed)) +
       " probe_misses=" +
       std::to_string(probe_misses_.load(std::memory_order_relaxed));
}

// --- HashJoinOperator ---

HashJoinOperator::HashJoinOperator(ExecContext* ctx, OperatorPtr left,
                                   OperatorPtr right, TableRef::JoinType join_type,
                                   ExprPtr condition, Schema schema)
    : Operator(ctx),
      left_(std::move(left)),
      right_(std::move(right)),
      schema_(std::move(schema)),
      core_(ctx, join_type, std::move(condition), &schema_),
      is_full_join_(join_type == TableRef::JoinType::kFull) {}

Status HashJoinOperator::Open() {
  HIVE_RETURN_IF_ERROR(right_->Open());
  HIVE_RETURN_IF_ERROR(core_.BindCondition(left_->schema()));
  HIVE_RETURN_IF_ERROR(core_.Build(right_.get()));
  // The probe subtree opens only once the build side finalized: a build
  // error or deadline kill returns above without ever touching it.
  return left_->Open();
}

Result<RowBatch> HashJoinOperator::Next(bool* done) {
  *done = false;
  for (;;) {
    HIVE_RETURN_IF_ERROR(CheckCancelled());
    if (!exhausted_left_) {
      bool left_done = false;
      HIVE_ASSIGN_OR_RETURN(RowBatch batch, left_->Next(&left_done));
      if (left_done) {
        exhausted_left_ = true;
        continue;
      }
      bool emitted = false;
      HIVE_ASSIGN_OR_RETURN(RowBatch out, core_.ProbeBatch(batch, &emitted));
      // Serial probe charges modeled CPU for every probed row (a parallel
      // probe charges only its slowest worker).
      if (ctx_->clock)
        ctx_->clock->Charge(static_cast<int64_t>(batch.SelectedSize()) *
                            core_.probe_ns_per_row() / 1000);
      if (emitted) {
        rows_produced_ += static_cast<int64_t>(out.num_rows());
        return out;
      }
      continue;
    }
    if (is_full_join_ && !emitted_unmatched_) {
      emitted_unmatched_ = true;
      HIVE_ASSIGN_OR_RETURN(RowBatch out, core_.EmitUnmatchedRight());
      if (out.num_rows() > 0) {
        rows_produced_ += static_cast<int64_t>(out.num_rows());
        return out;
      }
    }
    *done = true;
    return RowBatch();
  }
}

Status HashJoinOperator::Close() {
  core_.AnnotateProfile();
  HIVE_RETURN_IF_ERROR(left_->Close());
  return right_->Close();
}

}  // namespace hive
