#ifndef HIVE_EXEC_OPERATOR_H_
#define HIVE_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/column_vector.h"
#include "exec/exec_context.h"

namespace hive {

/// Pull-based vectorized physical operator: Open once, Next until `done`,
/// Close. Batches flow in columnar form with selection vectors; blocking
/// operators (hash build, aggregation, sort) report stage boundaries to the
/// context so the runtime simulation can charge MR-mode costs.
class Operator {
 public:
  explicit Operator(ExecContext* ctx) : ctx_(ctx) {}
  virtual ~Operator() = default;

  virtual Status Open() = 0;
  /// Produces the next batch. Sets *done (and returns an empty batch) at
  /// end of stream. A returned batch may carry a selection vector.
  virtual Result<RowBatch> Next(bool* done) = 0;
  virtual Status Close() { return Status::OK(); }

  /// Output schema.
  virtual const Schema& schema() const = 0;

  int64_t rows_produced() const { return rows_produced_; }

 protected:
  /// Interruption point: deadline evaluation + kill-flag check. Operators
  /// call this at batch boundaries inside blocking loops (sort, hash build,
  /// window materialization) so KILL triggers and query.timeout.ms take
  /// effect mid-pipeline, not just between pipelines.
  Status CheckCancelled() const { return ctx_->CheckInterrupted(); }

  ExecContext* ctx_;
  int64_t rows_produced_ = 0;
};

/// Drains `op` into a single materialized batch (tests, DML, subplans).
Result<RowBatch> CollectAll(Operator* op);

/// Drains `op` into boxed rows.
Result<std::vector<std::vector<Value>>> CollectRows(Operator* op);

}  // namespace hive

#endif  // HIVE_EXEC_OPERATOR_H_
