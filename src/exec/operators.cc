#include "exec/operators.h"

#include <set>

#include "common/hash.h"
#include "exec/spill.h"
#include "exec/vector_eval.h"
#include "obs/metric_names.h"

namespace hive {

// --- Values ---

ValuesOperator::ValuesOperator(ExecContext* ctx, const RelNode& node)
    : Operator(ctx), schema_(node.schema), rows_(node.rows) {}

Result<RowBatch> ValuesOperator::Next(bool* done) {
  if (emitted_) {
    *done = true;
    return RowBatch();
  }
  emitted_ = true;
  *done = false;
  RowBatch out(schema_);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < schema_.num_fields(); ++c)
      out.column(c)->AppendValue(c < row.size() ? row[c] : Value::Null());
  }
  out.set_num_rows(rows_.size());
  rows_produced_ += static_cast<int64_t>(rows_.size());
  if (rows_.empty()) {
    *done = true;
    return RowBatch();
  }
  return out;
}

// --- Filter ---

FilterOperator::FilterOperator(ExecContext* ctx, OperatorPtr child, ExprPtr predicate)
    : Operator(ctx), child_(std::move(child)), predicate_(std::move(predicate)) {}

Result<RowBatch> FilterOperator::Next(bool* done) {
  for (;;) {
    HIVE_RETURN_IF_ERROR(CheckCancelled());
    HIVE_ASSIGN_OR_RETURN(RowBatch batch, child_->Next(done));
    if (*done) return batch;
    HIVE_ASSIGN_OR_RETURN(std::vector<int32_t> selection,
                          FilterSelection(*predicate_, batch));
    if (selection.empty()) continue;  // fully filtered batch; pull the next
    rows_produced_ += static_cast<int64_t>(selection.size());
    batch.SetSelection(std::move(selection));
    return batch;
  }
}

// --- Project ---

ProjectOperator::ProjectOperator(ExecContext* ctx, OperatorPtr child,
                                 std::vector<ExprPtr> exprs, Schema schema)
    : Operator(ctx),
      child_(std::move(child)),
      exprs_(std::move(exprs)),
      schema_(std::move(schema)) {}

Result<RowBatch> ProjectOperator::Next(bool* done) {
  HIVE_ASSIGN_OR_RETURN(RowBatch batch, child_->Next(done));
  if (*done) return batch;
  RowBatch out(schema_);
  for (size_t i = 0; i < exprs_.size(); ++i) {
    HIVE_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*exprs_[i], batch));
    out.SetColumn(i, std::move(col));
  }
  out.set_num_rows(batch.num_rows());
  if (batch.has_selection()) out.SetSelection(batch.selection());
  rows_produced_ += static_cast<int64_t>(out.SelectedSize());
  return out;
}

// --- Limit ---

LimitOperator::LimitOperator(ExecContext* ctx, OperatorPtr child, int64_t limit)
    : Operator(ctx), child_(std::move(child)), remaining_(limit) {}

Result<RowBatch> LimitOperator::Next(bool* done) {
  if (remaining_ <= 0) {
    *done = true;
    return RowBatch();
  }
  HIVE_ASSIGN_OR_RETURN(RowBatch batch, child_->Next(done));
  if (*done) return batch;
  int64_t selected = static_cast<int64_t>(batch.SelectedSize());
  if (selected > remaining_) {
    std::vector<int32_t> selection;
    for (int64_t i = 0; i < remaining_; ++i)
      selection.push_back(batch.SelectedRow(static_cast<size_t>(i)));
    batch.SetSelection(std::move(selection));
    selected = remaining_;
  }
  remaining_ -= selected;
  rows_produced_ += selected;
  return batch;
}

// --- Union ---

UnionOperator::UnionOperator(ExecContext* ctx, std::vector<OperatorPtr> children,
                             Schema schema)
    : Operator(ctx), children_(std::move(children)), schema_(std::move(schema)) {}

Status UnionOperator::Open() {
  for (auto& child : children_) HIVE_RETURN_IF_ERROR(child->Open());
  return Status::OK();
}

Status UnionOperator::Close() {
  for (auto& child : children_) HIVE_RETURN_IF_ERROR(child->Close());
  return Status::OK();
}

Result<RowBatch> UnionOperator::Next(bool* done) {
  while (current_ < children_.size()) {
    bool child_done = false;
    HIVE_ASSIGN_OR_RETURN(RowBatch batch, children_[current_]->Next(&child_done));
    if (!child_done) {
      *done = false;
      rows_produced_ += static_cast<int64_t>(batch.SelectedSize());
      return batch;
    }
    ++current_;
  }
  *done = true;
  return RowBatch();
}

// --- Intersect / Except ---

SetOpOperator::SetOpOperator(ExecContext* ctx, OperatorPtr left, OperatorPtr right,
                             bool is_intersect)
    : Operator(ctx),
      left_(std::move(left)),
      right_(std::move(right)),
      is_intersect_(is_intersect) {}

Status SetOpOperator::Open() {
  HIVE_RETURN_IF_ERROR(left_->Open());
  return right_->Open();
}

Status SetOpOperator::Close() {
  HIVE_RETURN_IF_ERROR(left_->Close());
  return right_->Close();
}

Result<RowBatch> SetOpOperator::Next(bool* done) {
  if (!done_) {
    done_ = true;
    // Approximate resident cost of one digest in the std::set: the red-black
    // tree node (3 pointers + color + std::string header) plus the digest
    // payload when it escapes the small-string buffer.
    constexpr uint64_t kSetNodeBytes = 64;
    auto digest_bytes = [](const std::string& d) -> uint64_t {
      return kSetNodeBytes + (d.capacity() > sizeof(std::string) ? d.capacity() : 0);
    };
    reservation_.Attach(ctx_->query_memory);
    uint64_t digest_footprint = 0;
    // Hash the right side row digests.
    std::set<std::string> right_rows;
    bool child_done = false;
    for (;;) {
      HIVE_ASSIGN_OR_RETURN(RowBatch batch, right_->Next(&child_done));
      if (child_done) break;
      for (size_t i = 0; i < batch.SelectedSize(); ++i) {
        std::string digest;
        for (const Value& v : batch.GetRow(i)) digest += v.ToString() + "\x1f";
        auto [it, inserted] = right_rows.insert(std::move(digest));
        if (inserted) digest_footprint += digest_bytes(*it);
      }
      if (!reservation_.GrowTo(static_cast<int64_t>(digest_footprint))) {
        CountSpillMetric(ctx_, obs::metric::kSpillDeniedReservations, 1);
        return BudgetExceededStatus("set operation",
                                    static_cast<int64_t>(digest_footprint), ctx_);
      }
    }
    // Stream the left side, applying set semantics with dedup. The emitted-
    // digest set grows the same reservation: both sets are resident at once.
    result_ = RowBatch(left_->schema());
    std::set<std::string> emitted;
    child_done = false;
    for (;;) {
      HIVE_ASSIGN_OR_RETURN(RowBatch batch, left_->Next(&child_done));
      if (child_done) break;
      for (size_t i = 0; i < batch.SelectedSize(); ++i) {
        std::string digest;
        std::vector<Value> row = batch.GetRow(i);
        for (const Value& v : row) digest += v.ToString() + "\x1f";
        bool in_right = right_rows.count(digest) != 0;
        if (in_right != is_intersect_) continue;
        auto [it, inserted] = emitted.insert(std::move(digest));
        if (!inserted) continue;
        digest_footprint += digest_bytes(*it);
        int32_t src = batch.SelectedRow(i);
        for (size_t c = 0; c < result_.num_columns(); ++c)
          result_.column(c)->AppendFrom(*batch.column(c), src);
      }
      if (!reservation_.GrowTo(static_cast<int64_t>(digest_footprint))) {
        CountSpillMetric(ctx_, obs::metric::kSpillDeniedReservations, 1);
        return BudgetExceededStatus("set operation",
                                    static_cast<int64_t>(digest_footprint), ctx_);
      }
    }
    HIVE_RETURN_IF_ERROR(ctx_->OnStageBoundary(digest_footprint));
    result_.set_num_rows(result_.num_columns() ? result_.column(0)->size() : 0);
    rows_produced_ += static_cast<int64_t>(result_.num_rows());
  }
  if (emitted_ || result_.num_rows() == 0) {
    *done = true;
    return RowBatch();
  }
  emitted_ = true;
  *done = false;
  return result_;
}

// --- Spool (shared work) ---

SpoolOperator::SpoolOperator(ExecContext* ctx, std::shared_ptr<SpoolState> state,
                             Schema schema)
    : Operator(ctx), state_(std::move(state)), schema_(std::move(schema)) {}

Status SpoolOperator::Open() {
  MutexLock lock(&state_->mu);
  if (!state_->materialized) {
    state_->materialized = true;
    state_->status = state_->source->Open();
    if (state_->status.ok()) {
      bool done = false;
      for (;;) {
        auto batch = state_->source->Next(&done);
        if (!batch.ok()) {
          state_->status = batch.status();
          break;
        }
        if (done) break;
        state_->batches.push_back(std::move(*batch));
      }
      if (state_->status.ok()) state_->status = state_->source->Close();
    }
  }
  index_ = 0;
  return state_->status;
}

Result<RowBatch> SpoolOperator::Next(bool* done) {
  // Replays are read-only, but concurrent consumers may still be inside
  // Open() on another plan branch; the lock keeps the guarded access
  // discipline checkable instead of relying on operator-protocol ordering.
  MutexLock lock(&state_->mu);
  if (index_ >= state_->batches.size()) {
    *done = true;
    return RowBatch();
  }
  *done = false;
  const RowBatch& batch = state_->batches[index_++];
  rows_produced_ += static_cast<int64_t>(batch.SelectedSize());
  return batch;
}

}  // namespace hive
