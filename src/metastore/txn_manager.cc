#include "metastore/txn_manager.h"

#include <algorithm>

namespace hive {

int64_t TransactionManager::OpenTxn() {
  MutexLock lock(&mu_);
  int64_t id = next_txn_id_++;
  TxnInfo info;
  info.start_commit_seq = commit_seq_;
  txns_.emplace(id, std::move(info));
  return id;
}

Status TransactionManager::CommitTxn(int64_t txn_id) {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return Status::NotFound("txn " + std::to_string(txn_id));
  TxnInfo& txn = it->second;
  if (txn.state != TxnState::kOpen)
    return Status::InvalidArgument("txn not open: " + std::to_string(txn_id));

  // Optimistic conflict check: my update/delete resources vs update/deletes
  // committed after my start. First committer wins.
  for (const CommittedWrite& cw : committed_writes_) {
    if (cw.commit_seq <= txn.start_commit_seq) continue;
    for (const auto& [resource, kind] : txn.write_set) {
      if (kind != WriteOpKind::kUpdateDelete) continue;
      auto other = cw.write_set.find(resource);
      if (other != cw.write_set.end() && other->second == WriteOpKind::kUpdateDelete) {
        txn.state = TxnState::kAborted;
        ReleaseLocksLocked(txn_id);
        return Status::TxnAborted("write-write conflict on " + resource +
                                  " (first commit wins)");
      }
    }
  }

  txn.state = TxnState::kCommitted;
  if (!txn.write_set.empty())
    committed_writes_.push_back({++commit_seq_, txn.write_set});
  ReleaseLocksLocked(txn_id);
  return Status::OK();
}

Status TransactionManager::AbortTxn(int64_t txn_id) {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return Status::NotFound("txn " + std::to_string(txn_id));
  it->second.state = TxnState::kAborted;
  ReleaseLocksLocked(txn_id);
  return Status::OK();
}

bool TransactionManager::IsOpen(int64_t txn_id) const {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  return it != txns_.end() && it->second.state == TxnState::kOpen;
}

bool TransactionManager::IsAborted(int64_t txn_id) const {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  return it != txns_.end() && it->second.state == TxnState::kAborted;
}

TxnSnapshot TransactionManager::GetSnapshot() const {
  MutexLock lock(&mu_);
  TxnSnapshot snap;
  snap.high_watermark = next_txn_id_ - 1;
  for (const auto& [id, info] : txns_)
    if (info.state != TxnState::kCommitted) snap.open_or_aborted.insert(id);
  return snap;
}

Result<int64_t> TransactionManager::AllocateWriteId(int64_t txn_id,
                                                    const std::string& table) {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return Status::NotFound("txn " + std::to_string(txn_id));
  if (it->second.state != TxnState::kOpen)
    return Status::InvalidArgument("txn not open");
  auto existing = it->second.write_ids.find(table);
  if (existing != it->second.write_ids.end()) return existing->second;
  int64_t wid = ++next_write_id_[table];
  it->second.write_ids[table] = wid;
  table_write_ids_[table].push_back({txn_id, wid});
  return wid;
}

ValidWriteIdList TransactionManager::GetValidWriteIds(const std::string& table,
                                                      const TxnSnapshot& snapshot) const {
  MutexLock lock(&mu_);
  ValidWriteIdList out;
  auto it = table_write_ids_.find(table);
  if (it == table_write_ids_.end()) return out;  // hwm 0: nothing written
  for (const auto& [txn_id, wid] : it->second) {
    if (snapshot.Sees(txn_id)) {
      out.high_watermark = std::max(out.high_watermark, wid);
    }
  }
  // Exceptions: write ids at or below the hwm whose txn the snapshot does
  // not see (open or aborted at snapshot time, or started later). Ids whose
  // transaction is STILL open now are flagged separately so the compactor
  // never spans them.
  for (const auto& [txn_id, wid] : it->second) {
    if (wid <= out.high_watermark && !snapshot.Sees(txn_id)) {
      out.exceptions.insert(wid);
      auto txn = txns_.find(txn_id);
      if (txn != txns_.end() && txn->second.state == TxnState::kOpen)
        out.open_writes.insert(wid);
    }
  }
  return out;
}

int64_t TransactionManager::TableWriteIdHighWatermark(const std::string& table) const {
  MutexLock lock(&mu_);
  auto it = next_write_id_.find(table);
  return it == next_write_id_.end() ? 0 : it->second;
}

Status TransactionManager::RecordWriteSet(int64_t txn_id, const std::string& resource,
                                          WriteOpKind kind) {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return Status::NotFound("txn " + std::to_string(txn_id));
  auto& entry = it->second.write_set[resource];
  if (kind == WriteOpKind::kUpdateDelete) entry = WriteOpKind::kUpdateDelete;
  return Status::OK();
}

Status TransactionManager::AcquireLock(int64_t txn_id, const std::string& resource,
                                       LockMode mode) {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return Status::NotFound("txn " + std::to_string(txn_id));
  LockState& state = locks_[resource];
  if (state.exclusive_holder != -1 && state.exclusive_holder != txn_id)
    return Status::LockTimeout("resource locked exclusively: " + resource);
  if (mode == LockMode::kExclusive) {
    bool other_shared = std::any_of(
        state.shared_holders.begin(), state.shared_holders.end(),
        [txn_id](int64_t holder) { return holder != txn_id; });
    if (other_shared)
      return Status::LockTimeout("resource has shared holders: " + resource);
    state.exclusive_holder = txn_id;
  } else {
    state.shared_holders.insert(txn_id);
  }
  it->second.locks.insert(resource);
  return Status::OK();
}

void TransactionManager::ReleaseLocksLocked(int64_t txn_id) {
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return;
  for (const std::string& resource : it->second.locks) {
    auto lit = locks_.find(resource);
    if (lit == locks_.end()) continue;
    if (lit->second.exclusive_holder == txn_id) lit->second.exclusive_holder = -1;
    lit->second.shared_holders.erase(txn_id);
    if (lit->second.exclusive_holder == -1 && lit->second.shared_holders.empty())
      locks_.erase(lit);
  }
  it->second.locks.clear();
}

int64_t TransactionManager::UpdateDeleteCount(const std::string& table) const {
  MutexLock lock(&mu_);
  int64_t count = 0;
  for (const CommittedWrite& cw : committed_writes_) {
    for (const auto& [resource, kind] : cw.write_set) {
      if (kind != WriteOpKind::kUpdateDelete) continue;
      if (resource == table || resource.rfind(table + "/", 0) == 0) ++count;
    }
  }
  return count;
}

size_t TransactionManager::NumAborted() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& [id, info] : txns_)
    if (info.state == TxnState::kAborted) ++n;
  return n;
}

}  // namespace hive
