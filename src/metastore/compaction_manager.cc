#include "metastore/compaction_manager.h"

namespace hive {

Result<CompactionDecision> CompactionManager::Evaluate(
    const std::string& location, const ValidWriteIdList& snapshot) const {
  CompactionDecision decision;
  decision.location = location;
  HIVE_ASSIGN_OR_RETURN(AcidDirSelection sel,
                        SelectAcidDirs(catalog_->filesystem(), location, snapshot));
  decision.delta_count = sel.deltas.size() + sel.delete_deltas.size();

  uint64_t base_bytes = 0, delta_bytes = 0;
  auto dir_bytes = [&](const std::string& dir) -> uint64_t {
    auto files = catalog_->filesystem()->ListDir(dir);
    uint64_t total = 0;
    if (files.ok())
      for (const FileInfo& f : *files)
        if (!f.is_dir) total += f.size;
    return total;
  };
  if (sel.base) base_bytes = dir_bytes(sel.base->path);
  for (const AcidDirInfo& d : sel.deltas) delta_bytes += dir_bytes(d.path);
  for (const AcidDirInfo& d : sel.delete_deltas) delta_bytes += dir_bytes(d.path);
  decision.delta_ratio =
      base_bytes == 0 ? (delta_bytes > 0 ? 1.0 : 0.0)
                      : static_cast<double>(delta_bytes) / static_cast<double>(base_bytes);

  // Major when deltas are large relative to the base (or no base exists yet
  // and enough deltas piled up); minor when many small deltas accumulated.
  if (decision.delta_ratio >= config_->compaction_ratio_threshold &&
      decision.delta_count >= 2 &&
      (sel.base || decision.delta_count >=
                       static_cast<size_t>(config_->compaction_delta_threshold))) {
    decision.action = CompactionDecision::Action::kMajor;
  } else if (decision.delta_count >=
             static_cast<size_t>(config_->compaction_delta_threshold)) {
    decision.action = CompactionDecision::Action::kMinor;
  }
  return decision;
}

Status CompactionManager::CompactLocation(const std::string& location,
                                          const Schema& schema,
                                          const ValidWriteIdList& snapshot,
                                          CompactionDecision* decision) {
  Compactor compactor(catalog_->filesystem(), location, schema);
  switch (decision->action) {
    case CompactionDecision::Action::kMinor:
      HIVE_RETURN_IF_ERROR(compactor.RunMinor(snapshot));
      break;
    case CompactionDecision::Action::kMajor:
      HIVE_RETURN_IF_ERROR(compactor.RunMajor(snapshot));
      break;
    case CompactionDecision::Action::kNone:
      return Status::OK();
  }
  compactions_run_.fetch_add(1, std::memory_order_relaxed);
  // Cleaning is a separate phase: a scan that started before this compaction
  // may still be reading the superseded directories, so deletion waits until
  // the last in-flight reader drains. New readers are unaffected either way —
  // they select the freshly written base/delta.
  if (active_readers_.load(std::memory_order_acquire) > 0) {
    pending_cleans_.push_back({location, schema, snapshot});
    return Status::OK();
  }
  return compactor.Clean(snapshot);
}

void CompactionManager::FlushPendingCleans() {
  MutexLock lock(&compact_mu_);
  FlushPendingCleansLocked();
}

void CompactionManager::FlushPendingCleansLocked() {
  if (active_readers_.load(std::memory_order_acquire) > 0) return;
  // A clean that fails (e.g. a transient delete error) stays queued for the
  // next flush instead of being forgotten — dropping it would leak the
  // superseded directories until some later compaction of the same
  // location. kNotFound counts as done: the table (and its directories) was
  // dropped while the clean was pending.
  std::vector<PendingClean> still_pending;
  for (PendingClean& pending : pending_cleans_) {
    Compactor compactor(catalog_->filesystem(), pending.location, pending.schema);
    Status clean = compactor.Clean(pending.snapshot);
    if (!clean.ok() && !clean.IsNotFound())
      still_pending.push_back(std::move(pending));
  }
  pending_cleans_ = std::move(still_pending);
}

Result<std::vector<CompactionDecision>> CompactionManager::MaybeCompact(
    const std::string& db, const std::string& table) {
  HIVE_ASSIGN_OR_RETURN(TableDesc desc, catalog_->GetTable(db, table));
  if (!desc.is_acid) return std::vector<CompactionDecision>{};
  // One compaction at a time: post-write triggers arrive from every session.
  MutexLock lock(&compact_mu_);
  FlushPendingCleansLocked();
  // Compact only fully-committed history: snapshot from the txn manager.
  TxnSnapshot txn_snap = txns_->GetSnapshot();
  ValidWriteIdList snapshot = txns_->GetValidWriteIds(desc.FullName(), txn_snap);

  std::vector<std::string> locations;
  if (desc.IsPartitioned()) {
    HIVE_ASSIGN_OR_RETURN(std::vector<PartitionInfo> parts,
                          catalog_->GetPartitions(db, table));
    for (const PartitionInfo& p : parts) locations.push_back(p.location);
  } else {
    locations.push_back(desc.location);
  }

  std::vector<CompactionDecision> decisions;
  for (const std::string& location : locations) {
    HIVE_ASSIGN_OR_RETURN(CompactionDecision decision, Evaluate(location, snapshot));
    if (decision.action != CompactionDecision::Action::kNone)
      HIVE_RETURN_IF_ERROR(CompactLocation(location, desc.schema, snapshot, &decision));
    decisions.push_back(decision);
  }
  return decisions;
}

}  // namespace hive
