#ifndef HIVE_METASTORE_CATALOG_H_
#define HIVE_METASTORE_CATALOG_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/hll.h"
#include "common/sync.h"
#include "common/schema.h"
#include "common/types.h"
#include "fs/filesystem.h"

namespace hive {

struct SelectStmt;  // common/ast.h; held only by pointer here

/// Per-column statistics stored in the metastore (Section 4.1). Designed to
/// merge additively: inserts and per-partition stats combine without a
/// recomputation pass. NDV uses a HyperLogLog sketch, which merges without
/// losing approximation accuracy.
struct ColumnStatistics {
  int64_t num_values = 0;
  int64_t num_nulls = 0;
  Value min;
  Value max;
  HyperLogLog ndv{12};

  /// Additive merge of another stats fragment.
  void MergeFrom(const ColumnStatistics& other);
  /// Current distinct-value estimate.
  int64_t Ndv() const { return static_cast<int64_t>(ndv.Estimate()); }
};

/// Table-level statistics; `columns` is keyed by lower-cased column name.
struct TableStatistics {
  int64_t row_count = 0;
  int64_t data_size_bytes = 0;
  std::map<std::string, ColumnStatistics> columns;

  void MergeFrom(const TableStatistics& other);
};

/// Declared integrity constraints (Section 3.1); consumed by the optimizer
/// and the materialized-view rewriting algorithm.
struct ConstraintDef {
  enum class Kind { kPrimaryKey, kForeignKey, kUnique, kNotNull };
  Kind kind = Kind::kNotNull;
  std::vector<std::string> columns;
  std::string ref_table;  // FK target
  std::vector<std::string> ref_columns;
};

/// One horizontal partition of a table (PARTITIONED BY clause): the literal
/// partition-column values plus the storage directory that holds them.
struct PartitionInfo {
  std::vector<Value> values;
  std::string location;
  TableStatistics stats;
};

/// A table (or materialized view) registered in the metastore.
struct TableDesc {
  std::string db;
  std::string name;
  /// Data columns (excludes partition columns).
  Schema schema;
  /// Partition columns; their values are encoded in directory names.
  std::vector<Field> partition_cols;
  std::string location;
  /// ACID (transactional) table: data lives in base/delta directories.
  bool is_acid = true;
  /// External table backed by a storage handler ("droid", "jdbc", ...).
  std::string storage_handler;
  std::map<std::string, std::string> properties;
  std::vector<ConstraintDef> constraints;
  TableStatistics stats;

  // --- materialized view fields (Section 4.4) ---
  bool is_materialized_view = false;
  /// SQL text of the view definition.
  std::string view_sql;
  /// Parsed view definition, set by whoever registers the view (the DDL
  /// layer owns parsing). The optimizer's rewrite pass consumes this AST
  /// directly, so it never needs the SQL front-end — keeping the layering
  /// optimizer -> metastore -> common acyclic.
  std::shared_ptr<const SelectStmt> view_ast;
  /// Snapshot of each source table's write-id high watermark at the last
  /// (re)build; drives staleness checks and incremental maintenance.
  std::map<std::string, int64_t> mv_source_snapshot;
  /// Committed update/delete counts per source table at the last rebuild;
  /// any growth forces a full rebuild (incremental handles inserts only).
  std::map<std::string, int64_t> mv_source_upd_counts;
  /// Allowed staleness window in micros (table property
  /// "rewriting.time.window"); 0 = must be fresh.
  int64_t mv_staleness_window_us = 0;
  /// Wall-clock micros of the last rebuild.
  int64_t mv_last_rebuild_us = 0;

  std::string FullName() const { return db + "." + name; }
  /// Combined schema: data columns followed by partition columns.
  Schema FullSchema() const;
  bool IsPartitioned() const { return !partition_cols.empty(); }
};

/// The Hive Metastore catalog: databases, tables, partitions, statistics.
/// Thread-safe; all returned TableDesc values are snapshots (copies).
class Catalog {
 public:
  explicit Catalog(FileSystem* fs, std::string warehouse_root = "/warehouse");

  Status CreateDatabase(const std::string& name);
  bool DatabaseExists(const std::string& name) const;
  std::vector<std::string> ListDatabases() const;

  /// Creates a table; fills in `location` when empty.
  Status CreateTable(TableDesc desc);
  Result<TableDesc> GetTable(const std::string& db, const std::string& name) const;
  Status DropTable(const std::string& db, const std::string& name,
                   bool delete_data = true);
  std::vector<std::string> ListTables(const std::string& db) const;

  /// Registers a partition (idempotent); location derives from the values.
  Status AddPartition(const std::string& db, const std::string& table,
                      const std::vector<Value>& values);
  Result<std::vector<PartitionInfo>> GetPartitions(const std::string& db,
                                                   const std::string& table) const;
  Status DropPartition(const std::string& db, const std::string& table,
                       const std::vector<Value>& values, bool delete_data = true);

  /// Additively merges `delta` into the table's stats (and the partition's,
  /// when `partition_values` is non-empty).
  Status MergeStats(const std::string& db, const std::string& table,
                    const TableStatistics& delta,
                    const std::vector<Value>& partition_values = {});

  /// Replaces table properties / MV bookkeeping fields.
  Status UpdateTable(const TableDesc& desc);

  /// Lists every materialized view in the catalog (for the rewriting rule).
  std::vector<TableDesc> ListMaterializedViews() const;

  FileSystem* filesystem() const { return fs_; }
  const std::string& warehouse_root() const { return root_; }

  /// Monotonic metadata version, bumped by every successful mutation
  /// (DDL, partition changes, stats merges). Cached query plans are keyed
  /// on the version they were built against, so any catalog change —
  /// including an ANALYZE that only shifts statistics — invalidates them.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Directory name for a partition value set: "col1=v1/col2=v2".
  static std::string PartitionDirName(const std::vector<Field>& partition_cols,
                                      const std::vector<Value>& values);

 private:
  std::string TableLocation(const std::string& db, const std::string& name) const;

  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  std::atomic<uint64_t> version_{1};
  FileSystem* fs_;
  std::string root_;
  mutable Mutex mu_{"catalog.mu"};
  std::map<std::string, std::map<std::string, TableDesc>> dbs_ HIVE_GUARDED_BY(mu_);
  /// partitions_[db.table] -> value-key -> info
  std::map<std::string, std::map<std::string, PartitionInfo>> partitions_ HIVE_GUARDED_BY(mu_);
};

}  // namespace hive

#endif  // HIVE_METASTORE_CATALOG_H_
