#ifndef HIVE_METASTORE_COMPACTION_MANAGER_H_
#define HIVE_METASTORE_COMPACTION_MANAGER_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/sync.h"
#include "metastore/catalog.h"
#include "metastore/txn_manager.h"

namespace hive {

/// Outcome of one compaction check, for observability/tests.
struct CompactionDecision {
  std::string location;
  enum class Action { kNone, kMinor, kMajor } action = Action::kNone;
  size_t delta_count = 0;
  double delta_ratio = 0.0;
};

/// Automatic compaction, triggered by HS2 after writes when thresholds are
/// surpassed (Section 3.2): the number of delta directories in a table, or
/// the ratio of delta bytes to base bytes. Merging requires no locks; the
/// cleaning phase runs separately so in-flight readers complete first.
class CompactionManager {
 public:
  CompactionManager(Catalog* catalog, TransactionManager* txns, const Config* config)
      : catalog_(catalog), txns_(txns), config_(config) {}

  /// Checks every location of `db.table` (all partitions for partitioned
  /// tables) and runs the indicated compactions followed by cleaning.
  Result<std::vector<CompactionDecision>> MaybeCompact(const std::string& db,
                                                       const std::string& table);

  /// Decision logic only, no side effects.
  Result<CompactionDecision> Evaluate(const std::string& location,
                                      const ValidWriteIdList& snapshot) const;

  /// Marks a reader (query scan) as in flight. While any reader is active,
  /// compactions still merge but their cleaning is deferred, so scans never
  /// observe a delta directory vanishing mid-read.
  void BeginRead() { active_readers_.fetch_add(1, std::memory_order_acq_rel); }

  /// Ends a reader scope; the last reader out flushes deferred cleans.
  void EndRead() {
    if (active_readers_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      FlushPendingCleans();
  }

  /// RAII reader scope for the server's scan paths.
  class ReadScope {
   public:
    explicit ReadScope(CompactionManager* mgr) : mgr_(mgr) { mgr_->BeginRead(); }
    ~ReadScope() { mgr_->EndRead(); }
    ReadScope(const ReadScope&) = delete;
    ReadScope& operator=(const ReadScope&) = delete;

   private:
    CompactionManager* mgr_;
  };

  /// Deletes directories superseded by earlier compactions, provided no
  /// reader is active. Safe to call at any time.
  void FlushPendingCleans();

  int64_t compactions_run() const { return compactions_run_.load(); }
  size_t pending_cleans() const {
    MutexLock lock(&compact_mu_);
    return pending_cleans_.size();
  }

 private:
  /// A cleaning pass postponed because readers were in flight when its
  /// compaction committed.
  struct PendingClean {
    std::string location;
    Schema schema;
    ValidWriteIdList snapshot;
  };

  Status CompactLocation(const std::string& location, const Schema& schema,
                         const ValidWriteIdList& snapshot,
                         CompactionDecision* decision);
  void FlushPendingCleansLocked() HIVE_REQUIRES(compact_mu_);

  Catalog* catalog_;
  TransactionManager* txns_;
  const Config* config_;
  /// Serializes compaction runs: concurrent post-write triggers on the same
  /// table must not interleave merge and clean phases (a second compactor
  /// could list delta directories the first one is about to delete).
  mutable Mutex compact_mu_{"compaction.mu"};
  std::vector<PendingClean> pending_cleans_ HIVE_GUARDED_BY(compact_mu_);
  std::atomic<int64_t> active_readers_{0};
  std::atomic<int64_t> compactions_run_{0};
};

}  // namespace hive

#endif  // HIVE_METASTORE_COMPACTION_MANAGER_H_
