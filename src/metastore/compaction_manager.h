#ifndef HIVE_METASTORE_COMPACTION_MANAGER_H_
#define HIVE_METASTORE_COMPACTION_MANAGER_H_

#include <string>
#include <vector>

#include "common/config.h"
#include "metastore/catalog.h"
#include "metastore/txn_manager.h"

namespace hive {

/// Outcome of one compaction check, for observability/tests.
struct CompactionDecision {
  std::string location;
  enum class Action { kNone, kMinor, kMajor } action = Action::kNone;
  size_t delta_count = 0;
  double delta_ratio = 0.0;
};

/// Automatic compaction, triggered by HS2 after writes when thresholds are
/// surpassed (Section 3.2): the number of delta directories in a table, or
/// the ratio of delta bytes to base bytes. Merging requires no locks; the
/// cleaning phase runs separately so in-flight readers complete first.
class CompactionManager {
 public:
  CompactionManager(Catalog* catalog, TransactionManager* txns, const Config* config)
      : catalog_(catalog), txns_(txns), config_(config) {}

  /// Checks every location of `db.table` (all partitions for partitioned
  /// tables) and runs the indicated compactions followed by cleaning.
  Result<std::vector<CompactionDecision>> MaybeCompact(const std::string& db,
                                                       const std::string& table);

  /// Decision logic only, no side effects.
  Result<CompactionDecision> Evaluate(const std::string& location,
                                      const ValidWriteIdList& snapshot) const;

  int64_t compactions_run() const { return compactions_run_; }

 private:
  Status CompactLocation(const std::string& location, const Schema& schema,
                         const ValidWriteIdList& snapshot,
                         CompactionDecision* decision);

  Catalog* catalog_;
  TransactionManager* txns_;
  const Config* config_;
  int64_t compactions_run_ = 0;
};

}  // namespace hive

#endif  // HIVE_METASTORE_COMPACTION_MANAGER_H_
