#ifndef HIVE_METASTORE_TXN_MANAGER_H_
#define HIVE_METASTORE_TXN_MANAGER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "storage/acid.h"

namespace hive {

/// Global transaction snapshot: the high watermark TxnId plus the set of
/// open and aborted transactions below it (Section 3.2).
struct TxnSnapshot {
  int64_t high_watermark = 0;
  std::set<int64_t> open_or_aborted;

  bool Sees(int64_t txn_id) const {
    return txn_id <= high_watermark && open_or_aborted.count(txn_id) == 0;
  }
};

/// Lock modes. DROP TABLE / DROP PARTITION take exclusive locks; everything
/// else shares (Section 3.2).
enum class LockMode { kShared, kExclusive };

/// Kinds of writes tracked for optimistic conflict detection. Only updates
/// and deletes conflict ("first commit wins"); blind inserts never do.
enum class WriteOpKind { kInsert, kUpdateDelete };

/// The transaction and lock manager built on top of the metastore.
///
/// * TxnIds are global, monotonically increasing.
/// * WriteIds are per-table, monotonically increasing; each (txn, table)
///   pair gets one WriteId, and the mapping is retained so per-table
///   ValidWriteIdList snapshots can be derived from the global txn list.
/// * Updates/deletes use optimistic conflict resolution: write sets are
///   tracked per transaction and validated at commit time against writes
///   committed since the transaction began; the first committer wins.
class TransactionManager {
 public:
  TransactionManager() = default;

  /// Opens a transaction and returns its TxnId.
  int64_t OpenTxn();

  /// Commits; fails with kTxnAborted when a conflicting update/delete
  /// committed first, in which case the txn is aborted internally.
  Status CommitTxn(int64_t txn_id);

  Status AbortTxn(int64_t txn_id);

  bool IsOpen(int64_t txn_id) const;
  bool IsAborted(int64_t txn_id) const;

  /// Current global snapshot (taken at query start in HS2).
  TxnSnapshot GetSnapshot() const;

  /// Allocates (or returns the already-allocated) WriteId for this txn on
  /// `table` ("db.table").
  Result<int64_t> AllocateWriteId(int64_t txn_id, const std::string& table);

  /// Derives the per-table write-id snapshot from a global snapshot: the
  /// WriteId analogue of the txn list, used to bind scans (Section 3.2).
  ValidWriteIdList GetValidWriteIds(const std::string& table,
                                    const TxnSnapshot& snapshot) const;

  /// Highest allocated WriteId for a table (0 when never written). Used by
  /// the result cache and MV staleness checks to detect new data.
  int64_t TableWriteIdHighWatermark(const std::string& table) const;

  /// Number of committed UPDATE/DELETE operations against `table` (any
  /// partition). Materialized-view maintenance uses this to decide between
  /// incremental (insert-only history) and full rebuild (Section 4.4).
  int64_t UpdateDeleteCount(const std::string& table) const;

  /// Records a write for conflict detection. `resource` is "db.table" or
  /// "db.table/partition".
  Status RecordWriteSet(int64_t txn_id, const std::string& resource, WriteOpKind kind);

  /// Non-blocking lock acquisition; all locks of a txn release on
  /// commit/abort. Returns kLockTimeout status when incompatible.
  Status AcquireLock(int64_t txn_id, const std::string& resource, LockMode mode);

  /// Number of known aborted transactions (compaction metric).
  size_t NumAborted() const;

 private:
  enum class TxnState { kOpen, kCommitted, kAborted };

  struct TxnInfo {
    TxnState state = TxnState::kOpen;
    /// Commit sequence of the latest commit visible when this txn started.
    int64_t start_commit_seq = 0;
    /// Write-set entries: resource -> kind (update/delete dominates insert).
    std::map<std::string, WriteOpKind> write_set;
    /// WriteIds allocated: table -> write id.
    std::map<std::string, int64_t> write_ids;
    std::set<std::string> locks;
  };

  struct CommittedWrite {
    int64_t commit_seq;
    std::map<std::string, WriteOpKind> write_set;
  };

  struct LockState {
    int64_t exclusive_holder = -1;
    std::set<int64_t> shared_holders;
  };

  void ReleaseLocksLocked(int64_t txn_id) HIVE_REQUIRES(mu_);

  mutable Mutex mu_{"txn.mu"};
  int64_t next_txn_id_ HIVE_GUARDED_BY(mu_) = 1;
  int64_t commit_seq_ HIVE_GUARDED_BY(mu_) = 0;
  std::map<int64_t, TxnInfo> txns_ HIVE_GUARDED_BY(mu_);
  std::map<std::string, int64_t> next_write_id_ HIVE_GUARDED_BY(mu_);  // per table
  /// table -> list of (txn, write id) allocations, for snapshot derivation.
  std::map<std::string, std::vector<std::pair<int64_t, int64_t>>> table_write_ids_
      HIVE_GUARDED_BY(mu_);
  std::vector<CommittedWrite> committed_writes_ HIVE_GUARDED_BY(mu_);
  std::map<std::string, LockState> locks_ HIVE_GUARDED_BY(mu_);
};

}  // namespace hive

#endif  // HIVE_METASTORE_TXN_MANAGER_H_
