#include "metastore/catalog.h"

#include <algorithm>

namespace hive {

void ColumnStatistics::MergeFrom(const ColumnStatistics& other) {
  num_values += other.num_values;
  num_nulls += other.num_nulls;
  if (!other.min.is_null() && (min.is_null() || Value::Compare(other.min, min) < 0))
    min = other.min;
  if (!other.max.is_null() && (max.is_null() || Value::Compare(other.max, max) > 0))
    max = other.max;
  ndv.MergeFrom(other.ndv).ok();  // same precision everywhere
}

void TableStatistics::MergeFrom(const TableStatistics& other) {
  row_count += other.row_count;
  data_size_bytes += other.data_size_bytes;
  for (const auto& [name, stats] : other.columns) {
    auto it = columns.find(name);
    if (it == columns.end()) {
      columns.emplace(name, stats);
    } else {
      it->second.MergeFrom(stats);
    }
  }
}

Schema TableDesc::FullSchema() const {
  Schema full = schema;
  for (const Field& f : partition_cols) full.AddField(f.name, f.type);
  return full;
}

Catalog::Catalog(FileSystem* fs, std::string warehouse_root)
    : fs_(fs), root_(std::move(warehouse_root)) {
  dbs_["default"] = {};
}

Status Catalog::CreateDatabase(const std::string& name) {
  MutexLock lock(&mu_);
  std::string key = ToLower(name);
  if (dbs_.count(key)) return Status::AlreadyExists("database " + name);
  dbs_[key] = {};
  BumpVersion();
  return Status::OK();
}

bool Catalog::DatabaseExists(const std::string& name) const {
  MutexLock lock(&mu_);
  return dbs_.count(ToLower(name)) != 0;
}

std::vector<std::string> Catalog::ListDatabases() const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  for (const auto& kv : dbs_) out.push_back(kv.first);
  return out;
}

std::string Catalog::TableLocation(const std::string& db, const std::string& name) const {
  return JoinPath(JoinPath(root_, ToLower(db) + ".db"), ToLower(name));
}

Status Catalog::CreateTable(TableDesc desc) {
  std::string db = ToLower(desc.db);
  std::string name = ToLower(desc.name);
  {
    MutexLock lock(&mu_);
    auto dbit = dbs_.find(db);
    if (dbit == dbs_.end()) return Status::NotFound("database " + desc.db);
    if (dbit->second.count(name))
      return Status::AlreadyExists("table " + desc.FullName());
  }
  if (desc.location.empty()) desc.location = TableLocation(db, name);
  desc.db = db;
  desc.name = name;
  // Create the directory with the catalog unlocked: filesystem calls can
  // stall (fault injection charges latency) and must not freeze every other
  // catalog operation. MakeDirs is idempotent, so if two CREATEs race the
  // loser just fails the re-check below and leaves the shared dir behind.
  HIVE_RETURN_IF_ERROR(fs_->MakeDirs(desc.location));
  MutexLock lock(&mu_);
  auto dbit = dbs_.find(db);
  if (dbit == dbs_.end()) return Status::NotFound("database " + desc.db);
  if (dbit->second.count(name))
    return Status::AlreadyExists("table " + desc.FullName());
  dbit->second.emplace(name, std::move(desc));
  BumpVersion();
  return Status::OK();
}

Result<TableDesc> Catalog::GetTable(const std::string& db, const std::string& name) const {
  MutexLock lock(&mu_);
  auto dbit = dbs_.find(ToLower(db));
  if (dbit == dbs_.end()) return Status::NotFound("database " + db);
  auto it = dbit->second.find(ToLower(name));
  if (it == dbit->second.end()) return Status::NotFound("table " + db + "." + name);
  return it->second;
}

Status Catalog::DropTable(const std::string& db, const std::string& name,
                          bool delete_data) {
  std::string location;
  {
    MutexLock lock(&mu_);
    auto dbit = dbs_.find(ToLower(db));
    if (dbit == dbs_.end()) return Status::NotFound("database " + db);
    auto it = dbit->second.find(ToLower(name));
    if (it == dbit->second.end())
      return Status::NotFound("table " + db + "." + name);
    location = it->second.location;
  }
  if (delete_data && !location.empty()) {
    // Delete data with the catalog unlocked (the filesystem can stall), but
    // *before* dropping metadata: if the delete fails the table stays
    // registered and the drop can be retried, instead of silently leaking
    // the directory with no catalog entry pointing at it.
    Status del = fs_->DeleteRecursive(location);
    if (!del.ok() && !del.IsNotFound()) return del;
  }
  MutexLock lock(&mu_);
  auto dbit = dbs_.find(ToLower(db));
  if (dbit == dbs_.end()) return Status::NotFound("database " + db);
  auto it = dbit->second.find(ToLower(name));
  if (it == dbit->second.end())
    return Status::NotFound("table " + db + "." + name);
  partitions_.erase(it->second.FullName());
  dbit->second.erase(it);
  BumpVersion();
  return Status::OK();
}

std::vector<std::string> Catalog::ListTables(const std::string& db) const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  auto dbit = dbs_.find(ToLower(db));
  if (dbit == dbs_.end()) return out;
  for (const auto& kv : dbit->second) out.push_back(kv.first);
  return out;
}

std::string Catalog::PartitionDirName(const std::vector<Field>& partition_cols,
                                      const std::vector<Value>& values) {
  std::string out;
  for (size_t i = 0; i < partition_cols.size() && i < values.size(); ++i) {
    if (i) out += "/";
    out += ToLower(partition_cols[i].name) + "=" + values[i].ToString();
  }
  return out;
}

Status Catalog::AddPartition(const std::string& db, const std::string& table,
                             const std::vector<Value>& values) {
  std::string dir;
  std::string full_name;
  PartitionInfo info;
  {
    MutexLock lock(&mu_);
    auto dbit = dbs_.find(ToLower(db));
    if (dbit == dbs_.end()) return Status::NotFound("database " + db);
    auto it = dbit->second.find(ToLower(table));
    if (it == dbit->second.end())
      return Status::NotFound("table " + db + "." + table);
    const TableDesc& desc = it->second;
    if (values.size() != desc.partition_cols.size())
      return Status::InvalidArgument("partition arity mismatch for " +
                                     desc.FullName());
    dir = PartitionDirName(desc.partition_cols, values);
    full_name = desc.FullName();
    if (partitions_[full_name].count(dir)) return Status::OK();  // idempotent
    info.values = values;
    info.location = JoinPath(desc.location, dir);
  }
  // Directory creation happens unlocked; MakeDirs is idempotent so a raced
  // duplicate ADD PARTITION collapses onto the same entry below.
  HIVE_RETURN_IF_ERROR(fs_->MakeDirs(info.location));
  MutexLock lock(&mu_);
  auto dbit = dbs_.find(ToLower(db));
  if (dbit == dbs_.end()) return Status::NotFound("database " + db);
  if (!dbit->second.count(ToLower(table)))
    return Status::NotFound("table " + db + "." + table);
  auto& parts = partitions_[full_name];
  if (!parts.count(dir)) {
    parts.emplace(dir, std::move(info));
    BumpVersion();
  }
  return Status::OK();
}

Result<std::vector<PartitionInfo>> Catalog::GetPartitions(
    const std::string& db, const std::string& table) const {
  MutexLock lock(&mu_);
  auto dbit = dbs_.find(ToLower(db));
  if (dbit == dbs_.end()) return Status::NotFound("database " + db);
  auto it = dbit->second.find(ToLower(table));
  if (it == dbit->second.end()) return Status::NotFound("table " + db + "." + table);
  std::vector<PartitionInfo> out;
  auto pit = partitions_.find(it->second.FullName());
  if (pit != partitions_.end())
    for (const auto& kv : pit->second) out.push_back(kv.second);
  return out;
}

Status Catalog::DropPartition(const std::string& db, const std::string& table,
                              const std::vector<Value>& values, bool delete_data) {
  std::string dir;
  std::string full_name;
  std::string location;
  {
    MutexLock lock(&mu_);
    auto dbit = dbs_.find(ToLower(db));
    if (dbit == dbs_.end()) return Status::NotFound("database " + db);
    auto it = dbit->second.find(ToLower(table));
    if (it == dbit->second.end())
      return Status::NotFound("table " + db + "." + table);
    dir = PartitionDirName(it->second.partition_cols, values);
    full_name = it->second.FullName();
    auto pit = partitions_.find(full_name);
    if (pit == partitions_.end() || !pit->second.count(dir))
      return Status::NotFound("partition " + dir);
    location = pit->second[dir].location;
  }
  if (delete_data) {
    // Same ordering as DropTable: delete unlocked, and a failed data delete
    // aborts the drop so the partition never becomes an orphaned directory.
    Status del = fs_->DeleteRecursive(location);
    if (!del.ok() && !del.IsNotFound()) return del;
  }
  MutexLock lock(&mu_);
  auto pit = partitions_.find(full_name);
  if (pit == partitions_.end() || !pit->second.count(dir))
    return Status::NotFound("partition " + dir);
  pit->second.erase(dir);
  BumpVersion();
  return Status::OK();
}

Status Catalog::MergeStats(const std::string& db, const std::string& table,
                           const TableStatistics& delta,
                           const std::vector<Value>& partition_values) {
  MutexLock lock(&mu_);
  auto dbit = dbs_.find(ToLower(db));
  if (dbit == dbs_.end()) return Status::NotFound("database " + db);
  auto it = dbit->second.find(ToLower(table));
  if (it == dbit->second.end()) return Status::NotFound("table " + db + "." + table);
  it->second.stats.MergeFrom(delta);
  if (!partition_values.empty()) {
    std::string dir = PartitionDirName(it->second.partition_cols, partition_values);
    auto pit = partitions_.find(it->second.FullName());
    if (pit != partitions_.end()) {
      auto part = pit->second.find(dir);
      if (part != pit->second.end()) part->second.stats.MergeFrom(delta);
    }
  }
  BumpVersion();
  return Status::OK();
}

Status Catalog::UpdateTable(const TableDesc& desc) {
  MutexLock lock(&mu_);
  auto dbit = dbs_.find(ToLower(desc.db));
  if (dbit == dbs_.end()) return Status::NotFound("database " + desc.db);
  auto it = dbit->second.find(ToLower(desc.name));
  if (it == dbit->second.end()) return Status::NotFound("table " + desc.FullName());
  it->second = desc;
  BumpVersion();
  return Status::OK();
}

std::vector<TableDesc> Catalog::ListMaterializedViews() const {
  MutexLock lock(&mu_);
  std::vector<TableDesc> out;
  for (const auto& [db, tables] : dbs_)
    for (const auto& [name, desc] : tables)
      if (desc.is_materialized_view) out.push_back(desc);
  return out;
}

}  // namespace hive
