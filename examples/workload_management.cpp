// Workload management walkthrough (Section 5.2): the paper's `daytime`
// resource plan, verbatim, plus admission, slot borrowing and the
// downgrade trigger in action.
//
//   $ ./example_workload_management

#include <cstdio>

#include "fs/mem_filesystem.h"
#include "server/hive_server.h"

using namespace hive;

int main() {
  MemFileSystem fs;
  HiveServer2 server(&fs);
  Connection admin = server.Connect("admin");

  // The exact DDL from Section 5.2.
  const char* plan_ddl = R"sql(
CREATE RESOURCE PLAN daytime;
CREATE POOL daytime.bi WITH alloc_fraction=0.8, query_parallelism=5;
CREATE POOL daytime.etl WITH alloc_fraction=0.2, query_parallelism=20;
CREATE RULE downgrade IN daytime WHEN total_runtime > 3000 THEN MOVE etl;
ADD RULE downgrade TO bi;
CREATE APPLICATION MAPPING visualization_app IN daytime TO bi;
ALTER PLAN daytime SET DEFAULT POOL = etl;
ALTER RESOURCE PLAN daytime ENABLE ACTIVATE;
)sql";
  if (auto r = admin.ExecuteScript(plan_ddl); !r.ok()) {
    std::printf("plan DDL failed: %s\n", r.status().ToString().c_str());
    return 1;
  }

  auto plan = server.workload_manager()->ActivePlan();
  std::printf("active plan: %s\n", plan->name.c_str());
  for (const auto& [name, pool] : plan->pools)
    std::printf("  pool %-4s alloc=%.0f%% parallelism=%d\n", name.c_str(),
                pool.alloc_fraction * 100, pool.query_parallelism);

  // Admission: mapped application lands in `bi`, everything else in `etl`.
  auto bi_query = server.workload_manager()->Admit("visualization_app");
  auto etl_query = server.workload_manager()->Admit("nightly_batch");
  std::printf("\nvisualization_app admitted to pool: %s\n", (*bi_query)->pool.c_str());
  std::printf("nightly_batch admitted to pool:     %s\n", (*etl_query)->pool.c_str());

  // The downgrade trigger moves a long-running BI query into `etl`.
  std::printf("\nreporting runtime 2500 ms -> pool %s\n",
              ((*bi_query)->pool).c_str());
  server.workload_manager()->ReportProgress(*bi_query, 2500);
  std::printf("reporting runtime 3500 ms -> ");
  server.workload_manager()->ReportProgress(*bi_query, 3500);
  std::printf("pool %s (downgraded by rule)\n", (*bi_query)->pool.c_str());

  server.workload_manager()->Release(*bi_query);
  server.workload_manager()->Release(*etl_query);

  // Idle-capacity borrowing: fill etl's 20 slots; the 21st etl query runs
  // on a slot borrowed from bi rather than failing.
  std::vector<std::shared_ptr<WorkloadManager::QueryHandle>> running;
  for (int i = 0; i < 20; ++i)
    running.push_back(*server.workload_manager()->Admit("nightly_batch"));
  auto borrowed = server.workload_manager()->Admit("nightly_batch");
  std::printf("\n21st etl query: pool=%s borrowed_from=%s\n",
              (*borrowed)->pool.c_str(), (*borrowed)->borrowed_from.c_str());
  for (auto& handle : running) server.workload_manager()->Release(handle);
  server.workload_manager()->Release(*borrowed);

  // And queries still execute normally under the plan.
  Connection bi_session = server.Connect("visualization_app");
  if (!bi_session.Execute("CREATE TABLE kpis (name STRING, v DOUBLE)").ok() ||
      !bi_session.Execute("INSERT INTO kpis VALUES ('conversion', 0.031)").ok()) {
    std::fprintf(stderr, "kpi table setup failed\n");
    return 1;
  }
  auto result = bi_session.Execute("SELECT name, v FROM kpis");
  std::printf("\nmanaged query result:\n%s", result->ToString().c_str());
  return 0;
}
