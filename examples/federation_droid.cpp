// Federation walkthrough (Section 6): register external tables backed by
// the droid OLAP store and a CSV/JDBC-style source, query them through one
// SQL layer, and watch aggregations get pushed down as generated JSON
// queries (Figure 6).
//
//   $ ./example_federation_droid

#include <cstdio>

#include "federation/droid.h"
#include "fs/mem_filesystem.h"
#include "server/hive_server.h"

using namespace hive;

int main() {
  MemFileSystem fs;
  HiveServer2 server(&fs);
  Connection session = server.Connect("federation-demo");

  auto run = [&](const std::string& sql, bool print = true) {
    auto r = session.Execute(sql);
    if (!r.ok()) {
      std::printf("ERROR: %s\n", r.status().ToString().c_str());
      return QueryResult{};
    }
    if (print) std::printf("hive> %s\n%s\n", sql.c_str(), r->ToString().c_str());
    return *r;
  };

  // 1. Create a droid-backed external table (Section 6.1's first example).
  run("CREATE EXTERNAL TABLE druid_table_1 "
      "(__time TIMESTAMP, d1 STRING, m1 DOUBLE) "
      "STORED BY 'droid' TBLPROPERTIES ('droid.datasource' = 'my_droid_source')",
      false);
  run("INSERT INTO druid_table_1 VALUES "
      "(TIMESTAMP '2017-03-01 00:00:00', 'alpha', 10.0), "
      "(TIMESTAMP '2017-06-01 00:00:00', 'beta', 5.5), "
      "(TIMESTAMP '2018-02-01 00:00:00', 'alpha', 7.25), "
      "(TIMESTAMP '2019-05-01 00:00:00', 'alpha', 99.0)",
      false);
  std::printf("droid datasource rows: %zu\n\n",
              server.droid()->NumRows("my_droid_source"));

  // 2. The Figure 6 query: EXTRACT(year) interval + groupBy + sort + limit.
  run("SELECT d1, SUM(m1) AS s FROM druid_table_1 "
      "WHERE EXTRACT(year FROM __time) BETWEEN 2017 AND 2018 "
      "GROUP BY d1 ORDER BY s DESC LIMIT 10");

  // Show the generated droid JSON for the same shape (what the storage
  // handler ships over the wire).
  DroidQuery q;
  q.query_type = "groupBy";
  q.datasource = "my_droid_source";
  q.dimensions = {"d1"};
  q.aggregations = {{"doubleSum", "s", "m1"}};
  q.interval_start_us = DaysFromCivil(2017, 1, 1) * 86400LL * 1000000LL;
  q.interval_end_us = DaysFromCivil(2019, 1, 1) * 86400LL * 1000000LL;
  q.limit = 10;
  q.order_by = {{"s", false}};
  std::printf("generated droid query (Figure 6c):\n%s\n\n", q.ToJson().c_str());

  // 3. Schema inference: map an existing datasource without column list.
  run("CREATE EXTERNAL TABLE druid_table_2 STORED BY 'droid' "
      "TBLPROPERTIES ('droid.datasource' = 'my_droid_source')",
      false);
  auto mapped = server.catalog()->GetTable("default", "druid_table_2");
  std::printf("druid_table_2 schema inferred from droid metadata: %s\n\n",
              mapped->schema.ToString().c_str());

  // 4. A JDBC-style CSV source joined against the droid table: one SQL
  // layer over two specialized systems (the mediator role of Section 6).
  run("CREATE EXTERNAL TABLE dim_names (d1 STRING, full_name STRING) "
      "STORED BY 'jdbc'",
      false);
  run("INSERT INTO dim_names VALUES ('alpha', 'Alpha Centauri'), "
      "('beta', 'Beta Pictoris')",
      false);
  run("SELECT n.full_name, SUM(e.m1) AS total FROM druid_table_1 e, dim_names n "
      "WHERE e.d1 = n.d1 GROUP BY n.full_name ORDER BY total DESC");
  return 0;
}
