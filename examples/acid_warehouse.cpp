// ACID walkthrough: the GDPR-style workload Section 8 motivates — row-level
// erasure, upserts via MERGE, snapshot isolation, and automatic compaction
// of the delta files those operations produce.
//
//   $ ./example_acid_warehouse

#include <cstdio>

#include "fs/mem_filesystem.h"
#include "server/hive_server.h"

using namespace hive;

static void ListLayout(MemFileSystem* fs, const std::string& dir,
                       const std::string& label) {
  std::printf("-- %s:\n", label.c_str());
  auto entries = fs->ListDir(dir);
  if (!entries.ok()) return;
  for (const auto& e : *entries)
    std::printf("   %s%s\n", e.path.c_str(), e.is_dir ? "/" : "");
}

int main() {
  MemFileSystem fs;
  Config config;
  config.compaction_delta_threshold = 6;  // compact eagerly for the demo
  HiveServer2 server(&fs, config);
  Connection session = server.Connect("acid-demo");

  auto run = [&](const std::string& sql) {
    auto r = session.Execute(sql);
    if (!r.ok()) std::printf("ERROR: %s\n", r.status().ToString().c_str());
    return r.ok() ? *r : QueryResult{};
  };

  run("CREATE TABLE users (id INT, name STRING, country STRING, consent INT)");
  run("INSERT INTO users VALUES (1, 'alice', 'DE', 1), (2, 'bob', 'US', 1), "
      "(3, 'carol', 'FR', 0), (4, 'dave', 'DE', 1)");

  // Each transaction leaves a delta directory (Figure 3's layout).
  run("UPDATE users SET consent = 1 WHERE id = 3");
  ListLayout(&fs, "/warehouse/default.db/users", "layout after insert + update");

  // GDPR right-to-erasure: row-level DELETE, no partition rewrite needed.
  std::printf("\nErasing user 2 (right to erasure)...\n");
  QueryResult erased = run("DELETE FROM users WHERE id = 2");
  std::printf("deleted %lld row(s)\n", (long long)erased.rows_affected);

  // Upsert a CRM feed with MERGE (Section 3.2's DML surface).
  run("CREATE TABLE crm_feed (id INT, name STRING, country STRING)");
  run("INSERT INTO crm_feed VALUES (1, 'alice', 'AT'), (9, 'erin', 'SE')");
  run("MERGE INTO users u USING crm_feed f ON u.id = f.id "
      "WHEN MATCHED THEN UPDATE SET country = f.country "
      "WHEN NOT MATCHED THEN INSERT VALUES (f.id, f.name, f.country, 0)");

  QueryResult all = run("SELECT id, name, country, consent FROM users ORDER BY id");
  std::printf("\nusers after erasure + merge:\n%s", all.ToString().c_str());

  // Pile up small transactions until the automatic compactor merges them.
  for (int i = 0; i < 8; ++i)
    run("INSERT INTO users VALUES (" + std::to_string(100 + i) + ", 'u', 'US', 1)");
  ListLayout(&fs, "/warehouse/default.db/users",
             "layout after compaction (deltas merged, history shortened)");

  // Snapshot metadata: every record remains uniquely addressable.
  auto hwm = server.txns()->TableWriteIdHighWatermark("default.users");
  std::printf("\nwrite-id high watermark for default.users: %lld\n", (long long)hwm);
  std::printf("committed update/delete operations: %lld\n",
              (long long)server.txns()->UpdateDeleteCount("default.users"));
  return 0;
}
