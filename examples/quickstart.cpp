// Quickstart: stand up an in-process warehouse, create a partitioned ACID
// table, load data, and run analytic queries through HiveServer2.
//
//   $ ./example_quickstart

#include <cstdio>

#include "fs/mem_filesystem.h"
#include "server/hive_server.h"

using namespace hive;

int main() {
  // The warehouse lives on a pluggable file system; MemFileSystem here,
  // LocalFileSystem("/path") for durability.
  MemFileSystem fs;
  HiveServer2 server(&fs);
  Connection session = server.Connect("quickstart");

  auto run = [&](const std::string& sql) {
    std::printf("hive> %s\n", sql.c_str());
    auto result = session.Execute(sql);
    if (!result.ok()) {
      std::printf("ERROR: %s\n\n", result.status().ToString().c_str());
      return;
    }
    if (!result->rows.empty() || result->schema.num_fields() > 0)
      std::printf("%s", result->ToString().c_str());
    if (result->rows_affected > 0 && result->rows.empty())
      std::printf("(%lld rows affected)\n", (long long)result->rows_affected);
    std::printf("\n");
  };

  // The paper's Section 3.1 example table: partitioned by sold date, so
  // each day lands in its own directory and date filters prune partitions.
  run("CREATE TABLE store_sales ("
      "  item_sk INT, customer_sk INT, quantity INT, "
      "  list_price DECIMAL(7,2), sales_price DECIMAL(7,2), "
      "  PRIMARY KEY (item_sk)"
      ") PARTITIONED BY (sold_date_sk INT)");

  run("INSERT INTO store_sales VALUES "
      "(1, 100, 2, 9.99, 8.49, 20180101), "
      "(2, 101, 1, 19.99, 19.99, 20180101), "
      "(1, 102, 5, 9.99, 7.99, 20180102), "
      "(3, 100, 1, 4.99, 4.99, 20180102)");

  run("SELECT sold_date_sk, COUNT(*) AS sales, SUM(sales_price) AS revenue "
      "FROM store_sales GROUP BY sold_date_sk ORDER BY sold_date_sk");

  // Partition pruning in action: EXPLAIN shows a single partition scanned.
  run("EXPLAIN SELECT SUM(sales_price) FROM store_sales WHERE sold_date_sk = 20180102");

  // Row-level DML with ACID guarantees (Section 3.2).
  run("UPDATE store_sales SET quantity = 3 WHERE item_sk = 2");
  run("DELETE FROM store_sales WHERE customer_sk = 102");
  run("SELECT item_sk, customer_sk, quantity FROM store_sales ORDER BY item_sk");

  // The second identical query is served by the result cache (Section 4.3).
  auto once = session.Execute("SELECT COUNT(*) FROM store_sales");
  auto twice = session.Execute("SELECT COUNT(*) FROM store_sales");
  std::printf("result cache: first=%s second=%s\n",
              once->profile().counter(hive::obs::qc::kFromResultCache) ? "hit" : "miss",
              twice->profile().counter(hive::obs::qc::kFromResultCache) ? "hit" : "miss");
  return 0;
}
