// Materialized view walkthrough (Section 4.4): Figure 4's view definition,
// full- and partial-containment rewrites, staleness, and incremental
// maintenance.
//
//   $ ./example_materialized_views

#include <cstdio>

#include "fs/mem_filesystem.h"
#include "server/hive_server.h"

using namespace hive;

int main() {
  MemFileSystem fs;
  HiveServer2 server(&fs);
  Connection session = server.Connect("mv-demo");
  session.config().result_cache_enabled = false;  // watch the MV, not the cache

  auto run = [&](const std::string& sql) {
    auto r = session.Execute(sql);
    if (!r.ok()) std::printf("ERROR: %s\n", r.status().ToString().c_str());
    return r.ok() ? *r : QueryResult{};
  };

  // Figure 4's schema: store_sales fact + date_dim dimension.
  run("CREATE TABLE date_dim (d_date_sk INT, d_year INT, d_moy INT, d_dom INT)");
  run("CREATE TABLE store_sales (ss_sold_date_sk INT, ss_sales_price DECIMAL(7,2))");
  std::string dates = "INSERT INTO date_dim VALUES ", sales = "INSERT INTO store_sales VALUES ";
  int sk = 0;
  for (int year = 2016; year <= 2018; ++year)
    for (int moy = 1; moy <= 12; ++moy) {
      if (sk) { dates += ", "; sales += ", "; }
      dates += "(" + std::to_string(sk) + ", " + std::to_string(year) + ", " +
               std::to_string(moy) + ", 15)";
      sales += "(" + std::to_string(sk) + ", " + std::to_string(100 + sk) + ".50)";
      ++sk;
    }
  run(dates);
  run(sales);

  // Figure 4a: the materialized view.
  run("CREATE MATERIALIZED VIEW mat_view AS "
      "SELECT d_year, d_moy, d_dom, SUM(ss_sales_price) AS sum_sales "
      "FROM store_sales, date_dim "
      "WHERE ss_sold_date_sk = d_date_sk AND d_year > 2017 "
      "GROUP BY d_year, d_moy, d_dom");

  // Figure 4b: a fully contained query -> answered from the view.
  QueryResult q1 = run(
      "SELECT SUM(ss_sales_price) AS sum_sales FROM store_sales, date_dim "
      "WHERE ss_sold_date_sk = d_date_sk AND d_year = 2018 AND d_moy IN (1, 2, 3)");
  std::printf("q1 (full containment):   rewritten=%s  sum=%s\n",
              q1.profile().counter(hive::obs::qc::kMvRewrites) ? "yes" : "no", q1.rows[0][0].ToString().c_str());

  // Figure 4c: a wider filter -> MV part UNION ALL the complement from the
  // source tables, re-aggregated on top.
  QueryResult q2 = run(
      "SELECT d_year, d_moy, SUM(ss_sales_price) AS sum_sales "
      "FROM store_sales, date_dim "
      "WHERE ss_sold_date_sk = d_date_sk AND d_year > 2016 "
      "GROUP BY d_year, d_moy");
  std::printf("q2 (partial containment): rewritten=%s  groups=%zu\n",
              q2.profile().counter(hive::obs::qc::kMvRewrites) ? "yes" : "no", q2.rows.size());

  // New data makes the view stale: rewriting stops until REBUILD.
  run("INSERT INTO store_sales VALUES (35, 999.99)");
  QueryResult stale = run(
      "SELECT SUM(ss_sales_price) AS sum_sales FROM store_sales, date_dim "
      "WHERE ss_sold_date_sk = d_date_sk AND d_year = 2018 AND d_moy IN (1, 2, 3)");
  std::printf("after insert (stale MV):  rewritten=%s\n",
              stale.profile().counter(hive::obs::qc::kMvRewrites) ? "yes" : "no");

  run("ALTER MATERIALIZED VIEW mat_view REBUILD");
  QueryResult fresh = run(
      "SELECT SUM(ss_sales_price) AS sum_sales FROM store_sales, date_dim "
      "WHERE ss_sold_date_sk = d_date_sk AND d_year = 2018 AND d_moy IN (1, 2, 3)");
  std::printf("after REBUILD:            rewritten=%s  sum=%s\n",
              fresh.profile().counter(hive::obs::qc::kMvRewrites) ? "yes" : "no",
              fresh.rows[0][0].ToString().c_str());

  // Incremental maintenance: SPJ views absorb insert-only history without a
  // full recompute (the rebuild row count equals the delta, not the table).
  run("CREATE MATERIALIZED VIEW recent_sales AS "
      "SELECT ss_sold_date_sk, ss_sales_price FROM store_sales "
      "WHERE ss_sold_date_sk >= 24");
  run("INSERT INTO store_sales VALUES (30, 1.00), (31, 2.00)");
  QueryResult incremental = run("ALTER MATERIALIZED VIEW recent_sales REBUILD");
  std::printf("incremental rebuild ingested %lld delta row(s)\n",
              (long long)incremental.rows_affected);
  return 0;
}
