#!/usr/bin/env bash
# Runs the tier-1 suite plus the fault-injection matrix: every test in
# fault_injection_test, including the 8-seed byte-identity sweep
# (SeedMatrixIsByteIdentical) that re-runs the whole TPC-DS query set under
# mixed transient read errors, silent corruption, and straggling reads and
# asserts results identical to the fault-free baseline for each seed.
#
# Usage: scripts/run_fault_matrix.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j

echo "== tier-1 suite"
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "== fault matrix (8 seeds x {read errors, corruption, latency})"
"$BUILD_DIR/tests/fault_injection_test" \
  --gtest_filter='FaultInjectionTest.SeedMatrixIsByteIdentical' \
  --gtest_repeat=2
echo "== fault matrix OK"
