#!/usr/bin/env bash
# Builds the engine with ThreadSanitizer and runs the concurrency-sensitive
# test binaries: the morsel-driven parallel execution paths, the LLAP cache
# single-flight, the multi-session transactional stress tests, and the
# fault-injection suite (task-attempt retries, straggler speculation, cache
# poisoning defense, and deadline kills all race worker threads on purpose),
# the join matrix (parallel build/probe of the shared flat hash table),
# the observability suite (sharded metric counters under concurrent
# increments and snapshots), and the spill suite (8-executor queries
# growing and spilling against the shared memory governor).
#
# Usage: scripts/run_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DHIVE_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target \
  concurrency_test llap_test parallel_exec_test fault_injection_test obs_test \
  sync_test join_matrix_test spill_test workloads_test

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"

status=0
for t in concurrency_test llap_test parallel_exec_test fault_injection_test obs_test sync_test join_matrix_test spill_test workloads_test; do
  echo "== TSan: $t"
  if ! "$BUILD_DIR/tests/$t"; then
    echo "== TSan FAILED: $t"
    status=1
  fi
done
exit $status
