#!/usr/bin/env bash
# Runs the spill matrix: the budget ladder (unlimited / 1/4x / 1/16x of the
# working set) across 1 and 8 executors, asserting every join/agg/sort query
# stays byte-identical to the unlimited in-memory baseline, plus the same
# ladder under injected spill-file faults (transient read errors, silent
# corruption caught by spill checksums) and the low-memory 8-seed
# fault-injection sweep where the whole TPC-DS set runs under a 96 KiB query
# budget and must still match the fault-free baseline.
#
# Usage: scripts/run_spill_matrix.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j

echo "== spill unit + stream format tests"
"$BUILD_DIR/tests/spill_test" \
  --gtest_filter='MemoryGovernorTest.*:QueryMemoryTest.*:MemoryReservationTest.*:SpillStreamTest.*:SpillPartitionTest.*'

echo "== budget ladder (unlimited / 1/4x / 1/16x, 1 and 8 executors)"
"$BUILD_DIR/tests/spill_test" \
  --gtest_filter='SpillEndToEndTest.*' \
  --gtest_repeat=2

echo "== low-memory fault matrix (8 seeds, 96 KiB query budget)"
"$BUILD_DIR/tests/fault_injection_test" \
  --gtest_filter='FaultInjectionTest.LowMemorySeedMatrixSpillsAndStaysByteIdentical'

echo "== spill matrix OK"
