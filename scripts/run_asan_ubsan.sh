#!/usr/bin/env bash
# Builds the engine with AddressSanitizer + UndefinedBehaviorSanitizer and
# runs the full test suite under them. Complements scripts/run_tsan.sh
# (races need TSan's happens-before tracking; heap misuse, leaks, and UB
# need this build) and the static layers (-Wthread-safety under Clang,
# hivelint, the lock-order detector): each catches what the others cannot.
#
# Usage: scripts/run_asan_ubsan.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DHIVE_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j

export ASAN_OPTIONS="detect_leaks=1 strict_string_checks=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1 halt_on_error=1 ${UBSAN_OPTIONS:-}"

echo "== ASan/UBSan: ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
