#!/usr/bin/env bash
# Static analysis in isolation: build hivelint, prove its rules against the
# marker fixtures, then hold src/ to all four passes. This is the cheapest
# verification rung (sub-second after the tool builds) — run it before a
# commit touching src/. `ctest --test-dir build -L lint` is the same thing
# driven through ctest.
#
# Usage: scripts/run_lint.sh
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build --target hivelint -j
build/tools/hivelint --self-test tests/hivelint_fixtures
build/tools/hivelint --root . src
