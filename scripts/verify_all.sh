#!/usr/bin/env bash
# The whole verification ladder in one command, cheapest rung first:
#
#   1. build + ctest        — unit/integration suites, the lock-order
#                             detector (on by default), hivelint self-test,
#                             and hivelint over src/
#   2. TSan                 — data races on the concurrency-sensitive suites
#   3. ASan + UBSan         — heap misuse, leaks, undefined behavior
#   4. spill matrix         — budget ladder byte-identity + low-memory
#                             fault sweep (scripts/run_spill_matrix.sh)
#   5. join + spill benches — morsel-parallel join scaling (BENCH_join.json)
#                             and spill degradation (BENCH_spill.json)
#   6. concurrency bench    — many-session admission-control smoke; fails
#                             unless every submitted query is accounted for
#                             (BENCH_concurrency.json must report "lost": 0)
#
# (Under a Clang toolchain, step 1's build also runs the -Wthread-safety
# static analysis against the annotations in common/sync.h.)
#
# Usage: scripts/verify_all.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==== [1/6] build + ctest (includes hivelint) ===="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "==== [2/6] ThreadSanitizer ===="
scripts/run_tsan.sh

echo "==== [3/6] ASan + UBSan ===="
scripts/run_asan_ubsan.sh

echo "==== [4/6] spill matrix ===="
scripts/run_spill_matrix.sh

echo "==== [5/6] join + spill benches ===="
build/bench/bench_join
test -s BENCH_join.json
build/bench/bench_spill
test -s BENCH_spill.json

echo "==== [6/6] concurrency bench (no lost queries) ===="
build/bench/bench_concurrency --smoke
test -s BENCH_concurrency.json
grep -q '"lost": 0' BENCH_concurrency.json

echo "==== verify_all: all rungs passed ===="
