#!/usr/bin/env bash
# The whole verification ladder in one command, cheapest rung first:
#
#   1. build + ctest        — unit/integration suites, the lock-order
#                             detector (on by default), hivelint self-test,
#                             and hivelint over src/
#   2. TSan                 — data races on the concurrency-sensitive suites
#   3. ASan + UBSan         — heap misuse, leaks, undefined behavior
#
# (Under a Clang toolchain, step 1's build also runs the -Wthread-safety
# static analysis against the annotations in common/sync.h.)
#
# Usage: scripts/verify_all.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==== [1/3] build + ctest (includes hivelint) ===="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "==== [2/3] ThreadSanitizer ===="
scripts/run_tsan.sh

echo "==== [3/3] ASan + UBSan ===="
scripts/run_asan_ubsan.sh

echo "==== verify_all: all rungs passed ===="
