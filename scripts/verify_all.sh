#!/usr/bin/env bash
# The whole verification ladder in one command, cheapest rung first:
#
#   1. lint                 — hivelint self-test + all four passes over src/
#                             (scripts/run_lint.sh; sub-second, fails fast
#                             before the full build is even attempted)
#   2. build + ctest        — unit/integration suites, the lock-order
#                             detector (on by default), and the same lint
#                             checks as labeled ctest targets (-L lint)
#   3. TSan                 — data races on the concurrency-sensitive suites
#   4. ASan + UBSan         — heap misuse, leaks, undefined behavior
#   5. spill matrix         — budget ladder byte-identity + low-memory
#                             fault sweep (scripts/run_spill_matrix.sh)
#   6. join + spill benches — morsel-parallel join scaling (BENCH_join.json)
#                             and spill degradation (BENCH_spill.json)
#   7. concurrency bench    — many-session admission-control smoke; fails
#                             unless every submitted query is accounted for
#                             (BENCH_concurrency.json must report "lost": 0)
#
# (Under a Clang toolchain, step 1's build also runs the -Wthread-safety
# static analysis against the annotations in common/sync.h.)
#
# Usage: scripts/verify_all.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==== [1/7] lint (hivelint self-test + src/) ===="
scripts/run_lint.sh

echo "==== [2/7] build + ctest ===="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "==== [3/7] ThreadSanitizer ===="
scripts/run_tsan.sh

echo "==== [4/7] ASan + UBSan ===="
scripts/run_asan_ubsan.sh

echo "==== [5/7] spill matrix ===="
scripts/run_spill_matrix.sh

echo "==== [6/7] join + spill benches ===="
build/bench/bench_join
test -s BENCH_join.json
build/bench/bench_spill
test -s BENCH_spill.json

echo "==== [7/7] concurrency bench (no lost queries) ===="
build/bench/bench_concurrency --smoke
test -s BENCH_concurrency.json
grep -q '"lost": 0' BENCH_concurrency.json

echo "==== verify_all: all rungs passed ===="
