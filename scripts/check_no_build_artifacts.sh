#!/usr/bin/env bash
# Fails when generated build artifacts are tracked by git (or staged to be).
# The build trees (`build/`, `build-tsan/`, or any CMake output) must stay
# out of the repository: they are machine-specific, churn on every
# configure, and bloat diffs. Run from anywhere; used by scripts/verify.
set -euo pipefail

cd "$(dirname "$0")/.."

# Tracked files under a build tree, or classic CMake droppings anywhere.
offenders=$(git ls-files --cached \
  | grep -E '^(build|build-[^/]+)/|(^|/)(CMakeCache\.txt|CMakeFiles/|cmake_install\.cmake)|\.o$|\.a$' \
  || true)

if [[ -n "$offenders" ]]; then
  echo "error: build artifacts are tracked by git:" >&2
  echo "$offenders" | head -20 >&2
  count=$(echo "$offenders" | wc -l)
  [[ "$count" -gt 20 ]] && echo "... and $((count - 20)) more" >&2
  echo "fix: git rm -r --cached <path>  (build trees are covered by .gitignore)" >&2
  exit 1
fi
echo "ok: no build artifacts tracked"
