// Morsel-driven scan scaling: one scan-heavy aggregate over the partitioned
// TPC-DS fact table, executed at 1/2/4/8 executors with cold and warm LLAP
// cache. The morsel queue splits the scan into (location, file, row_group)
// units claimed by executor threads; timings follow the repo convention of
// wall time plus modeled virtual time (scan CPU is charged per executor
// critical path, see Config::scan_cpu_ns_per_row), so the speedup reflects
// a host with num_executors cores even when this one serializes the
// threads. Results must stay identical at every executor count.
//
// Emits BENCH_parallel_scan.json with the timing trajectory.

#include <fstream>
#include <vector>

#include "bench_util.h"

using namespace hive;
using namespace hive::bench;

namespace {

constexpr const char* kQuery =
    "SELECT ss_store_sk, COUNT(*) AS cnt, SUM(ss_quantity) AS qty, "
    "SUM(ss_sales_price) AS amt "
    "FROM store_sales GROUP BY ss_store_sk";

std::string RowsKey(const QueryResult& result) {
  std::string key;
  for (const auto& row : result.rows) {
    for (const Value& v : row) {
      key += v.ToString();
      key += '|';
    }
    key += '\n';
  }
  return key;
}

double RunMs(Connection& session, QueryResult* out) {
  Timing t = RunTimed(session, kQuery);
  if (!t.ok) std::exit(1);
  *out = std::move(t.result);
  return t.millis;
}

}  // namespace

int main() {
  MemFileSystem fs;
  Config config;
  config.container_startup_us = 0;
  config.num_executors = 8;  // pool size; per-run sessions scale below it
  HiveServer2 server(&fs, config);
  Connection loader = server.Connect();
  TpcdsOptions options;
  options.scale = 12;  // enough morsels that fan-out dominates overheads
  if (Status load = LoadTpcds(loader, options); !load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }

  struct Sample {
    int executors;
    double cold_ms;
    double warm_ms;
    size_t rows;
  };
  std::vector<Sample> samples;
  std::string baseline_key;

  PrintHeader("Morsel-driven parallel scan scaling (warm = LLAP cache hot)");
  std::printf("%-10s %12s %12s %10s\n", "executors", "cold (ms)", "warm (ms)",
              "speedup");

  double warm_at_1 = 0;
  for (int executors : {1, 2, 4, 8}) {
    Connection session = server.Connect();
    session.config().result_cache_enabled = false;
    session.config().num_executors = executors;

    server.llap()->cache()->Clear();
    QueryResult cold_result;
    double cold_ms = RunMs(session, &cold_result);

    // Warm: best of three with the cache populated.
    double warm_ms = 0;
    QueryResult warm_result;
    for (int rep = 0; rep < 3; ++rep) {
      QueryResult r;
      double ms = RunMs(session, &r);
      if (rep == 0 || ms < warm_ms) warm_ms = ms;
      warm_result = std::move(r);
    }

    std::string key = RowsKey(warm_result);
    if (RowsKey(cold_result) != key) {
      std::fprintf(stderr, "cold/warm results differ at %d executors\n", executors);
      return 1;
    }
    if (baseline_key.empty()) {
      baseline_key = key;
      warm_at_1 = warm_ms;
    } else if (key != baseline_key) {
      std::fprintf(stderr, "results differ at %d executors\n", executors);
      return 1;
    }

    samples.push_back({executors, cold_ms, warm_ms, warm_result.rows.size()});
    std::printf("%-10d %12.2f %12.2f %9.2fx\n", executors, cold_ms, warm_ms,
                warm_at_1 / std::max(warm_ms, 0.001));
  }

  std::printf("\nresults identical across executor counts: yes\n");
  std::printf("I/O elevator prefetches issued: %lld; cache decodes: %llu, "
              "single-flight waits: %llu\n",
              static_cast<long long>(server.llap()->prefetches_issued()),
              static_cast<unsigned long long>(server.llap()->cache()->data_decodes()),
              static_cast<unsigned long long>(
                  server.llap()->cache()->singleflight_waits()));

  std::ofstream json("BENCH_parallel_scan.json");
  json << "{\n  \"benchmark\": \"parallel_scan\",\n  \"query\": \"tpcds store_sales "
          "group-by aggregate\",\n  \"samples\": [\n";
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    json << "    {\"executors\": " << s.executors << ", \"cold_ms\": " << s.cold_ms
         << ", \"warm_ms\": " << s.warm_ms
         << ", \"warm_speedup_vs_1\": " << warm_at_1 / std::max(s.warm_ms, 0.001)
         << ", \"rows\": " << s.rows << "}" << (i + 1 < samples.size() ? "," : "")
         << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_parallel_scan.json\n");
  return 0;
}
