// Morsel-parallel hash join scaling: a fact x dim star join (perfect-hash
// territory: the build keys are a dense duplicate-free integer domain) and a
// fact x fact join (duplicate keys on both sides, generic flat table), each
// executed at 1/2/4/8 executors with cold and warm LLAP cache. Timings
// follow the repo convention of wall time plus modeled virtual time: probe
// CPU (Config::join_cpu_ns_per_row, halved when the perfect-hash table
// engages) and the partitioned build are charged per executor critical
// path, so the speedup reflects a host with num_executors cores. Results
// must stay byte-identical at every executor count and table variant.
//
// Emits BENCH_join.json. `--smoke` runs a tiny scale for ctest.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace hive;
using namespace hive::bench;

namespace {

// Star join over the dense item dimension. The dimension filter keeps the
// build side small and the emit sparse, so timing tracks the probe (the
// part that parallelizes), not result materialization — and the filtered
// i_item_sk domain stays dense enough for the perfect-hash table.
constexpr const char* kFactDim =
    "SELECT i_category, COUNT(*) AS cnt, SUM(ss_quantity) AS qty "
    "FROM store_sales, item WHERE ss_item_sk = i_item_sk "
    "AND i_category = 'Sports' GROUP BY i_category";

// Fact x fact on the shared ticket number: the ~360k-row fact table probes
// a build side drawn from another fact table. Tickets span the whole fact
// domain (range >> 2*rows), so the perfect-hash table must decline and the
// generic flat table carries the probe; the build-side amount filter keeps
// the emit sparse so the probe dominates timing.
constexpr const char* kFactFact =
    "SELECT COUNT(*) AS pairs, SUM(sr_return_amt) AS amt "
    "FROM store_sales JOIN store_returns "
    "ON ss_ticket_number = sr_ticket_number WHERE sr_return_amt > 90";

std::string RowsKey(const QueryResult& result) {
  std::string key;
  for (const auto& row : result.rows) {
    for (const Value& v : row) {
      key += v.ToString();
      key += '|';
    }
    key += '\n';
  }
  return key;
}

Connection SessionFor(HiveServer2* server, int executors, bool perfect_hash) {
  Connection session = server->Connect();
  session.config().result_cache_enabled = false;
  // Semijoin reduction would prune the probe scan to near-nothing on these
  // selective build sides — great for TPC-DS, but this bench measures the
  // probe pipeline itself, so every fact row must reach the join.
  session.config().semijoin_reduction_enabled = false;
  session.config().num_executors = executors;
  session.config().perfect_hash_join_enabled = perfect_hash;
  return session;
}

struct Sample {
  std::string query;
  std::string variant;
  int executors;
  double cold_ms;
  double warm_ms;
  size_t rows;
};

/// Cold run (cache cleared) + warm best-of-five; aborts on any result
/// mismatch against `expected_key` (set from the first variant measured).
Sample Measure(HiveServer2* server, const std::string& name,
               const std::string& variant, const std::string& sql,
               int executors, bool perfect_hash, std::string* expected_key) {
  Connection session = SessionFor(server, executors, perfect_hash);
  server->llap()->cache()->Clear();
  Timing cold = RunTimed(session, sql);
  if (!cold.ok) std::exit(1);

  double warm_ms = 0;
  QueryResult warm_result;
  for (int rep = 0; rep < 5; ++rep) {
    Timing t = RunTimed(session, sql);
    if (!t.ok) std::exit(1);
    if (rep == 0 || t.millis < warm_ms) warm_ms = t.millis;
    warm_result = std::move(t.result);
  }

  std::string key = RowsKey(warm_result);
  if (RowsKey(cold.result) != key) {
    std::fprintf(stderr, "%s/%s: cold/warm results differ at %d executors\n",
                 name.c_str(), variant.c_str(), executors);
    std::exit(1);
  }
  if (expected_key->empty()) {
    *expected_key = key;
  } else if (key != *expected_key) {
    std::fprintf(stderr, "%s/%s: results differ at %d executors\n",
                 name.c_str(), variant.c_str(), executors);
    std::exit(1);
  }
  return {name, variant, executors, cold.millis, warm_ms,
          warm_result.rows.size()};
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  MemFileSystem fs;
  Config config;
  config.container_startup_us = 0;
  config.num_executors = 8;  // pool size; per-run sessions scale below it
  HiveServer2 server(&fs, config);
  Connection loader = server.Connect();
  TpcdsOptions options;
  options.scale = smoke ? 1 : 12;  // ~30k fact rows per unit of scale
  Must(LoadTpcds(loader, options));

  const std::vector<int> sweep = smoke ? std::vector<int>{1, 8}
                                       : std::vector<int>{1, 2, 4, 8};
  std::vector<Sample> samples;

  PrintHeader("Morsel-parallel hash join scaling (warm = LLAP cache hot)");
  std::printf("%-12s %-10s %-10s %12s %12s %10s\n", "query", "variant",
              "executors", "cold (ms)", "warm (ms)", "speedup");

  auto run_sweep = [&](const std::string& name, const std::string& sql,
                       bool perfect_hash, const std::string& variant) {
    std::string expected_key;
    double warm_at_1 = 0;
    for (int executors : sweep) {
      Sample s = Measure(&server, name, variant, sql, executors, perfect_hash,
                         &expected_key);
      if (executors == sweep.front()) warm_at_1 = s.warm_ms;
      std::printf("%-12s %-10s %-10d %12.2f %12.2f %9.2fx\n", name.c_str(),
                  variant.c_str(), executors, s.cold_ms, s.warm_ms,
                  warm_at_1 / std::max(s.warm_ms, 0.001));
      samples.push_back(std::move(s));
    }
  };

  // Perfect-hash on vs off on the same dense-key star join: the array
  // table must engage (exec.join.perfect_hash moves) and win.
  int64_t ph_before = server.metrics()->counter("exec.join.perfect_hash")->value();
  run_sweep("fact_dim", kFactDim, /*perfect_hash=*/true, "perfect");
  int64_t ph_after = server.metrics()->counter("exec.join.perfect_hash")->value();
  if (ph_after <= ph_before) {
    std::fprintf(stderr, "perfect hash never engaged on the dense item key\n");
    return 1;
  }
  run_sweep("fact_dim", kFactDim, /*perfect_hash=*/false, "generic");
  run_sweep("fact_fact", kFactFact, /*perfect_hash=*/true, "generic");

  std::printf("\nresults identical across executor counts and variants: yes\n");
  std::printf("perfect-hash engagements this run: %lld\n",
              static_cast<long long>(ph_after - ph_before));

  std::ofstream json("BENCH_join.json");
  json << "{\n  \"benchmark\": \"join\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"samples\": [\n";
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    // Speedup is relative to the same query+variant at the lowest executor
    // count in the sweep.
    double base = s.warm_ms;
    for (const Sample& b : samples) {
      if (b.query == s.query && b.variant == s.variant &&
          b.executors == sweep.front()) {
        base = b.warm_ms;
        break;
      }
    }
    json << "    {\"query\": \"" << s.query << "\", \"variant\": \""
         << s.variant << "\", \"executors\": " << s.executors
         << ", \"cold_ms\": " << s.cold_ms << ", \"warm_ms\": " << s.warm_ms
         << ", \"warm_speedup_vs_1\": " << base / std::max(s.warm_ms, 0.001)
         << ", \"rows\": " << s.rows << "}"
         << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_join.json\n");
  return 0;
}
