// Graceful degradation under memory pressure: a fact x fact join, a wide
// GROUP BY, a full ORDER BY, and the combined join+agg+sort shape run down
// a budget ladder — unlimited, then ~1/4x and ~1/16x of the estimated
// working set — and every rung must return byte-identical rows. The
// interesting output is the slowdown each spill regime costs over the
// in-memory run alongside the spill bytes it wrote. The unlimited rung must
// not spill and the tightest rung must (exec.spill.bytes moves), so the
// bench can't silently measure the in-memory path three times.
//
// Emits BENCH_spill.json. `--smoke` runs a tiny scale for ctest.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <fstream>

#include "bench_util.h"

using namespace hive;
using namespace hive::bench;

namespace {

// Fact x fact on the shared ticket number, no build-side filter: the build
// hash table holds every return row, so it is the first state to outgrow a
// tight budget and fall back to grace partitioning.
constexpr const char* kJoin =
    "SELECT COUNT(*) AS pairs, SUM(sr_return_amt) AS amt "
    "FROM store_sales JOIN store_returns "
    "ON ss_ticket_number = sr_ticket_number";

// Ticket number is unique per sale, so the hash-agg state holds one group
// per fact row — the worst case for the aggregation hash table.
constexpr const char* kAgg =
    "SELECT ss_ticket_number, COUNT(*) AS cnt, SUM(ss_quantity) AS qty "
    "FROM store_sales GROUP BY ss_ticket_number";

// Full materializing sort over the fact table, no LIMIT, so the top-K heap
// cannot engage and the external merge path carries tight budgets.
constexpr const char* kSort =
    "SELECT ss_item_sk, ss_ticket_number, ss_quantity "
    "FROM store_sales ORDER BY ss_quantity, ss_item_sk, ss_ticket_number";

// The acceptance shape: join feeding a group-by feeding a sort, so all
// three spill paths can be active in one plan under the tightest rung.
constexpr const char* kJoinAggSort =
    "SELECT sr_customer_sk, COUNT(*) AS cnt, SUM(sr_return_amt) AS amt "
    "FROM store_sales JOIN store_returns "
    "ON ss_ticket_number = sr_ticket_number "
    "GROUP BY sr_customer_sk ORDER BY amt DESC, sr_customer_sk";

std::string RowsKey(const QueryResult& result) {
  std::string key;
  for (const auto& row : result.rows) {
    for (const Value& v : row) {
      key += v.ToString();
      key += '|';
    }
    key += '\n';
  }
  return key;
}

struct Rung {
  std::string name;
  int64_t budget_bytes;  // query.memory.limit.bytes; 0 = unlimited
};

struct Sample {
  std::string query;
  std::string rung;
  int64_t budget_bytes;
  double cold_ms;
  double warm_ms;
  int64_t spill_bytes;
  size_t rows;
};

Sample Measure(HiveServer2* server, const std::string& name, const Rung& rung,
               const std::string& sql, std::string* expected_key) {
  Connection session = server->Connect();
  session.config().result_cache_enabled = false;
  session.config().query_memory_limit_bytes = rung.budget_bytes;

  int64_t spill0 = server->metrics()->Value("exec.spill.bytes");
  server->llap()->cache()->Clear();
  Timing cold = RunTimed(session, sql);
  if (!cold.ok) std::exit(1);

  double warm_ms = 0;
  QueryResult warm_result;
  for (int rep = 0; rep < 3; ++rep) {
    Timing t = RunTimed(session, sql);
    if (!t.ok) std::exit(1);
    if (rep == 0 || t.millis < warm_ms) warm_ms = t.millis;
    warm_result = std::move(t.result);
  }
  int64_t spilled = server->metrics()->Value("exec.spill.bytes") - spill0;

  std::string key = RowsKey(warm_result);
  if (RowsKey(cold.result) != key) {
    std::fprintf(stderr, "%s/%s: cold/warm results differ\n", name.c_str(),
                 rung.name.c_str());
    std::exit(1);
  }
  if (expected_key->empty()) {
    *expected_key = key;
  } else if (key != *expected_key) {
    std::fprintf(stderr, "%s/%s: results differ from the unlimited rung\n",
                 name.c_str(), rung.name.c_str());
    std::exit(1);
  }
  if (rung.budget_bytes == 0 && spilled != 0) {
    std::fprintf(stderr, "%s/%s: unlimited rung spilled %lld bytes\n",
                 name.c_str(), rung.name.c_str(),
                 static_cast<long long>(spilled));
    std::exit(1);
  }
  return {name,    rung.name, rung.budget_bytes,      cold.millis,
          warm_ms, spilled,   warm_result.rows.size()};
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  MemFileSystem fs;
  Config config;
  config.container_startup_us = 0;
  config.num_executors = 8;
  HiveServer2 server(&fs, config);
  Connection loader = server.Connect();
  TpcdsOptions options;
  options.scale = smoke ? 1 : 8;  // ~30k fact rows per unit of scale
  Must(LoadTpcds(loader, options));

  auto count = loader.Execute("SELECT COUNT(*) FROM store_sales");
  Must(count.status());
  const int64_t fact_rows = count->rows[0][0].AsInt64();
  // Rough per-row resident footprint (boxed values plus hash/sort
  // overhead); the ladder only needs the right order of magnitude to pick
  // budgets the working set genuinely exceeds.
  const int64_t working_set = fact_rows * 64;
  const std::vector<Rung> ladder = {
      {"unlimited", 0},
      {"quarter", working_set / 4},
      {"sixteenth", working_set / 16},
  };

  PrintHeader("Spill degradation (budget ladder vs in-memory)");
  std::printf("fact rows: %lld, estimated working set: %lld KiB\n",
              static_cast<long long>(fact_rows),
              static_cast<long long>(working_set / 1024));
  std::printf("%-14s %-10s %12s %12s %12s %14s\n", "query", "budget",
              "cold (ms)", "warm (ms)", "slowdown", "spill (KiB)");

  const std::vector<std::pair<std::string, std::string>> queries = {
      {"join", kJoin},
      {"agg", kAgg},
      {"sort", kSort},
      {"join_agg_sort", kJoinAggSort},
  };
  std::vector<Sample> samples;
  int64_t governed_spill = 0;
  for (const auto& [name, sql] : queries) {
    std::string expected_key;
    double unlimited_warm = 0;
    for (const Rung& rung : ladder) {
      Sample s = Measure(&server, name, rung, sql, &expected_key);
      if (rung.budget_bytes == 0) unlimited_warm = s.warm_ms;
      if (rung.budget_bytes != 0) governed_spill += s.spill_bytes;
      std::printf("%-14s %-10s %12.2f %12.2f %11.2fx %14lld\n", name.c_str(),
                  rung.name.c_str(), s.cold_ms, s.warm_ms,
                  s.warm_ms / std::max(unlimited_warm, 0.001),
                  static_cast<long long>(s.spill_bytes / 1024));
      samples.push_back(std::move(s));
    }
    // The tightest rung leaves the working set at ~16x the budget; if even
    // that ran fully in memory the ladder is mis-sized and the bench is
    // measuring nothing.
    if (samples.back().spill_bytes == 0) {
      std::fprintf(stderr, "%s: sixteenth rung never spilled\n", name.c_str());
      return 1;
    }
  }
  if (governed_spill == 0) {
    std::fprintf(stderr, "no governed rung spilled anywhere\n");
    return 1;
  }
  std::printf("\nresults identical across the whole ladder: yes\n");

  std::ofstream json("BENCH_spill.json");
  json << "{\n  \"benchmark\": \"spill\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"fact_rows\": " << fact_rows
       << ",\n  \"working_set_bytes\": " << working_set
       << ",\n  \"samples\": [\n";
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    double base = s.warm_ms;
    for (const Sample& b : samples) {
      if (b.query == s.query && b.budget_bytes == 0) {
        base = b.warm_ms;
        break;
      }
    }
    json << "    {\"query\": \"" << s.query << "\", \"budget\": \"" << s.rung
         << "\", \"budget_bytes\": " << s.budget_bytes
         << ", \"cold_ms\": " << s.cold_ms << ", \"warm_ms\": " << s.warm_ms
         << ", \"slowdown_vs_unlimited\": " << s.warm_ms / std::max(base, 0.001)
         << ", \"spill_bytes\": " << s.spill_bytes << ", \"rows\": " << s.rows
         << "}" << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_spill.json\n");
  return 0;
}
