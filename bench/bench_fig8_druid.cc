// Figure 8 reproduction: SSB queries answered from the denormalized
// materialized view, stored (a) natively in Hive vs (b) in droid (the
// embedded Druid stand-in) with Calcite-style query pushdown.
// The paper reports Hive/Druid 1.6x faster than the native materialization.

#include "bench_util.h"

using namespace hive;
using namespace hive::bench;

int main() {
  MemFileSystem fs;
  HiveServer2 server(&fs, Config{});
  Connection session = server.Connect();
  session.config().result_cache_enabled = false;
  if (Status load = LoadSsb(session, SsbOptions{}); !load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }

  auto queries = SsbQueries();

  // --- variant A: denormalized MV stored natively in Hive ---
  auto mv = session.Execute("CREATE MATERIALIZED VIEW ssb_denorm AS " +
                               SsbDenormalizedMvSql());
  if (!mv.ok()) {
    std::fprintf(stderr, "MV creation failed: %s\n", mv.status().ToString().c_str());
    return 1;
  }
  std::vector<double> native_ms(queries.size(), -1);
  std::vector<int> native_rewrites(queries.size(), 0);
  for (size_t i = 0; i < queries.size(); ++i) RunTimed(session, queries[i].sql);
  for (size_t i = 0; i < queries.size(); ++i) {
    Timing t = RunTimed(session, queries[i].sql);
    if (t.ok) {
      native_ms[i] = t.millis;
      native_rewrites[i] = t.result.profile().counter(hive::obs::qc::kMvRewrites);
    }
  }
  // Retire the native MV so the droid variant is the only rewrite target.
  // lint: allow-discard(drop is best-effort scaffolding between variants)
  (void)session.Execute("DROP MATERIALIZED VIEW ssb_denorm");

  // --- variant B: the same materialization stored in droid ---
  auto droid_table = LoadSsbIntoDroid(session);
  if (!droid_table.ok()) {
    std::fprintf(stderr, "droid load failed: %s\n",
                 droid_table.status().ToString().c_str());
    return 1;
  }
  std::vector<double> droid_ms(queries.size(), -1);
  std::vector<int> droid_rewrites(queries.size(), 0);
  for (size_t i = 0; i < queries.size(); ++i) RunTimed(session, queries[i].sql);
  for (size_t i = 0; i < queries.size(); ++i) {
    Timing t = RunTimed(session, queries[i].sql);
    if (t.ok) {
      droid_ms[i] = t.millis;
      droid_rewrites[i] = t.result.profile().counter(hive::obs::qc::kMvRewrites);
    }
  }

  PrintHeader("Figure 8: SSB response times, native-Hive MV vs droid federation");
  std::printf("%-8s %14s %14s %9s %10s\n", "query", "Hive MV (ms)", "Hive/droid (ms)",
              "speedup", "rewritten");
  double total_native = 0, total_droid = 0;
  int counted = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (native_ms[i] < 0 || droid_ms[i] < 0) {
      std::printf("%-8s %14s %14s %9s\n", queries[i].name.c_str(), "FAILED", "FAILED", "-");
      continue;
    }
    total_native += native_ms[i];
    total_droid += droid_ms[i];
    ++counted;
    std::printf("%-8s %14.2f %14.2f %8.1fx %6s/%s\n", queries[i].name.c_str(),
                native_ms[i], droid_ms[i], native_ms[i] / std::max(droid_ms[i], 0.01),
                native_rewrites[i] ? "mv" : "-", droid_rewrites[i] ? "mv" : "-");
  }
  std::printf("\nAggregate over %d queries: native %.2f ms, droid %.2f ms -> %.1fx "
              "(paper: 1.6x)\n",
              counted, total_native, total_droid,
              total_native / std::max(total_droid, 0.01));
  return 0;
}
