// Section 8 claim: the second-generation ACID design reads "at par with
// non-ACID tables". Micro-benchmarks (google-benchmark) comparing full
// scans of the same data stored (a) as a non-transactional table, (b) as a
// compacted ACID table, and (c) as an ACID table with pending delta files
// and deletes (the merge-on-read worst case the first design suffered on).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "fs/mem_filesystem.h"
#include "metastore/catalog.h"
#include "storage/acid.h"
#include "storage/chunk_provider.h"

namespace {
/// Bench setup over MemFileSystem cannot legitimately fail; abort loudly if
/// it does rather than silently benchmarking a half-built table.
void Must(const hive::Status& s) {
  if (!s.ok()) {
    fprintf(stderr, "bench setup failed: %s\n", s.ToString().c_str());
    abort();
  }
}
}  // namespace


namespace hive {
namespace {

constexpr int kRows = 50000;

Schema TableSchema() {
  Schema s;
  s.AddField("k", DataType::Bigint());
  s.AddField("v", DataType::Bigint());
  s.AddField("s", DataType::String());
  return s;
}

std::vector<Value> Row(int64_t i) {
  return {Value::Bigint(i), Value::Bigint(i * 7 % 1000),
          Value::String("payload-" + std::to_string(i % 100))};
}

/// Shared fixture state: three pre-built table layouts in one MemFS.
struct AcidBenchState {
  MemFileSystem fs;
  Schema schema = TableSchema();

  AcidBenchState() {
    // (a) non-ACID: plain COF files in the table directory.
    {
      CofWriter writer(schema);
      for (int64_t i = 0; i < kRows; ++i) writer.AppendRow(Row(i));
      auto bytes = writer.Finish();
      Must(fs.MakeDirs("/plain"));
      Must(fs.WriteFile("/plain/file_0000", *bytes));
    }
    // (b) ACID, compacted: one base directory.
    {
      AcidWriter writer(&fs, "/acid_compacted", schema, 1);
      for (int64_t i = 0; i < kRows; ++i) writer.Insert(Row(i));
      Must(writer.Commit());
      Compactor compactor(&fs, "/acid_compacted", schema);
      Must(compactor.RunMajor(ValidWriteIdList::All(1)));
      Must(compactor.Clean(ValidWriteIdList::All(1)));
    }
    // (c) ACID, uncompacted: 20 insert deltas + 4 delete deltas.
    {
      const int kDeltas = 20;
      for (int d = 0; d < kDeltas; ++d) {
        AcidWriter writer(&fs, "/acid_deltas", schema, d + 1);
        for (int64_t i = d * (kRows / kDeltas);
             i < (d + 1) * static_cast<int64_t>(kRows / kDeltas); ++i)
          writer.Insert(Row(i));
        Must(writer.Commit());
      }
      for (int d = 0; d < 4; ++d) {
        AcidWriter writer(&fs, "/acid_deltas", schema, kDeltas + d + 1);
        for (int64_t r = 0; r < 50; ++r)
          writer.Delete({d * 3 + 1, 0, r * 7});
        Must(writer.Commit());
      }
    }
  }
};

AcidBenchState& State() {
  static auto* state = new AcidBenchState();
  return *state;
}

int64_t ScanPlain(FileSystem* fs) {
  auto reader = CofReader::Open(fs, "/plain/file_0000");
  int64_t rows = 0;
  for (size_t rg = 0; rg < (*reader)->num_row_groups(); ++rg) {
    auto batch = (*reader)->ReadRowGroup(rg, {0, 1, 2});
    rows += static_cast<int64_t>(batch->num_rows());
  }
  return rows;
}

int64_t ScanAcid(FileSystem* fs, const Schema& schema, const std::string& dir,
                 int64_t hwm) {
  AcidReader reader(fs, dir, schema);
  Must(reader.Open(ValidWriteIdList::All(hwm), {}));
  int64_t rows = 0;
  bool done = false;
  for (;;) {
    auto batch = reader.NextBatch(&done);
    if (done) break;
    rows += static_cast<int64_t>(batch->SelectedSize());
  }
  return rows;
}

void BM_ScanNonAcid(benchmark::State& state) {
  auto& s = State();
  for (auto _ : state) benchmark::DoNotOptimize(ScanPlain(&s.fs));
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ScanNonAcid)->Unit(benchmark::kMillisecond);

void BM_ScanAcidCompacted(benchmark::State& state) {
  auto& s = State();
  for (auto _ : state)
    benchmark::DoNotOptimize(ScanAcid(&s.fs, s.schema, "/acid_compacted", 1));
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ScanAcidCompacted)->Unit(benchmark::kMillisecond);

void BM_ScanAcidManyDeltas(benchmark::State& state) {
  auto& s = State();
  for (auto _ : state)
    benchmark::DoNotOptimize(ScanAcid(&s.fs, s.schema, "/acid_deltas", 24));
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ScanAcidManyDeltas)->Unit(benchmark::kMillisecond);

/// Sarg pushdown works identically on ACID and non-ACID paths: a selective
/// point lookup skips the same row groups.
void BM_AcidPointLookup(benchmark::State& state) {
  auto& s = State();
  for (auto _ : state) {
    AcidReader reader(&s.fs, "/acid_compacted", s.schema);
    AcidScanOptions options;
    options.sarg.conjuncts.push_back(
        {"k", SargOp::kEq, {Value::Bigint(12345)}, nullptr});
    Must(reader.Open(ValidWriteIdList::All(1), options));
    bool done = false;
    int64_t rows = 0;
    for (;;) {
      auto batch = reader.NextBatch(&done);
      if (done) break;
      rows += static_cast<int64_t>(batch->SelectedSize());
    }
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_AcidPointLookup)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace hive

BENCHMARK_MAIN();
