// Section 7.1's shared-work claim: q88 (many identical fact-table
// subexpressions) runs 2.7x faster with the shared work optimizer enabled.
// This harness runs the q88-style query with the optimizer on/off.

#include "bench_util.h"

using namespace hive;
using namespace hive::bench;

int main() {
  MemFileSystem fs;
  HiveServer2 server(&fs, Config{});
  Connection session = server.Connect();
  if (Status load = LoadTpcds(session, TpcdsOptions{}); !load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }

  // Run on the container path (no LLAP chunk cache) so the shared scan's
  // I/O and decode savings are visible, as they were in the paper's q88.
  Connection with = server.Connect();
  with.config().result_cache_enabled = false;
  with.config().llap_enabled = false;
  with.config().container_startup_us = 0;
  Connection without = server.Connect();
  without.config().result_cache_enabled = false;
  without.config().llap_enabled = false;
  without.config().container_startup_us = 0;
  without.config().shared_work_enabled = false;

  std::string sql = TpcdsQ88Style();
  // Warm the data cache so the comparison isolates plan-level reuse.
  RunTimed(with, sql);
  RunTimed(without, sql);

  const int kRuns = 5;
  double on_ms = 0, off_ms = 0;
  for (int r = 0; r < kRuns; ++r) {
    Timing t_on = RunTimed(with, sql);
    Timing t_off = RunTimed(without, sql);
    if (!t_on.ok || !t_off.ok) {
      std::fprintf(stderr, "q88 failed\n");
      return 1;
    }
    on_ms += t_on.millis;
    off_ms += t_off.millis;
    // Results must agree.
    if (t_on.result.rows != t_off.result.rows &&
        t_on.result.rows.size() != t_off.result.rows.size()) {
      std::fprintf(stderr, "shared-work results diverge!\n");
      return 1;
    }
  }
  // Bytes read per execution (the mechanism behind the speedup).
  MemFileSystem* mem = static_cast<MemFileSystem*>(server.filesystem());
  mem->ResetIoStats();
  RunTimed(with, sql);
  uint64_t bytes_on = mem->bytes_read();
  mem->ResetIoStats();
  RunTimed(without, sql);
  uint64_t bytes_off = mem->bytes_read();

  // The in-memory FS serves reads for free; charge them at a modeled disk
  // throughput so the shared scan's I/O saving shows up in response time
  // the way it did on the paper's HDFS-backed cluster.
  constexpr double kModeledMBps = 200.0;
  auto with_io = [&](double ms, uint64_t bytes) {
    return ms + static_cast<double>(bytes) / (kModeledMBps * 1048.576);
  };
  double off_total = with_io(off_ms / kRuns, bytes_off);
  double on_total = with_io(on_ms / kRuns, bytes_on);

  PrintHeader("q88-style query: shared work optimizer (Section 4.5)");
  std::printf("%-18s %12s %14s %18s\n", "configuration", "cpu (ms)",
              "bytes scanned", "total @200MB/s (ms)");
  std::printf("%-18s %12.2f %14llu %18.2f\n", "shared work OFF", off_ms / kRuns,
              static_cast<unsigned long long>(bytes_off), off_total);
  std::printf("%-18s %12.2f %14llu %18.2f\n", "shared work ON", on_ms / kRuns,
              static_cast<unsigned long long>(bytes_on), on_total);
  std::printf("\nSpeedup: %.1fx, scan reduction %.1fx (paper: 2.7x on q88)\n",
              off_total / std::max(on_total, 0.01),
              static_cast<double>(bytes_off) / std::max<double>(bytes_on, 1));
  return 0;
}
