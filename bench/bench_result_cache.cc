// Section 4.3 ablation: the query result cache under a BI-style repetitive
// workload — identical dashboards refreshing the same queries — with the
// cache enabled vs disabled, plus invalidation behaviour on writes.

#include "bench_util.h"

using namespace hive;
using namespace hive::bench;

int main() {
  MemFileSystem fs;
  HiveServer2 server(&fs, Config{});
  Connection session = server.Connect();
  if (Status load = LoadTpcds(session, TpcdsOptions{}); !load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }

  // The "dashboard": three repeated queries.
  std::vector<std::string> dashboard = {
      "SELECT i_category, SUM(ss_sales_price) AS total FROM store_sales, item "
      "WHERE ss_item_sk = i_item_sk GROUP BY i_category ORDER BY total DESC",
      "SELECT d_year, COUNT(*) AS cnt FROM store_sales, date_dim "
      "WHERE ss_sold_date_sk = d_date_sk GROUP BY d_year",
      "SELECT s_state, SUM(ss_quantity) AS qty FROM store_sales, store "
      "WHERE ss_store_sk = s_store_sk GROUP BY s_state",
  };

  Connection cached = server.Connect();
  Connection uncached = server.Connect();
  uncached.config().result_cache_enabled = false;

  const int kRefreshes = 10;
  double with_ms = 0, without_ms = 0;
  int hits = 0;
  for (int r = 0; r < kRefreshes; ++r) {
    for (const std::string& sql : dashboard) {
      Timing t1 = RunTimed(cached, sql);
      Timing t2 = RunTimed(uncached, sql);
      if (!t1.ok || !t2.ok) return 1;
      with_ms += t1.millis;
      without_ms += t2.millis;
      if (t1.result.profile().counter(hive::obs::qc::kFromResultCache)) ++hits;
    }
  }

  PrintHeader("Query result cache (Section 4.3): repetitive BI workload");
  std::printf("%-28s %14s\n", "configuration", "total (ms)");
  std::printf("%-28s %14.2f\n", "cache disabled", without_ms);
  std::printf("%-28s %14.2f\n", "cache enabled", with_ms);
  std::printf("\nSpeedup: %.1fx; cache hits: %d of %d executions\n",
              without_ms / std::max(with_ms, 0.01), hits,
              kRefreshes * static_cast<int>(dashboard.size()));

  // Invalidation: a write to a referenced table forces recomputation.
  RunTimed(session, "INSERT INTO store_sales VALUES "
                             "(1, 1, 1, 999999, 5, 10.00, 9.00, 0)");
  Timing after_write = RunTimed(cached, dashboard[0]);
  std::printf("After INSERT into store_sales: served from cache = %s (expected no)\n",
              after_write.result.profile().counter(hive::obs::qc::kFromResultCache) ? "yes" : "no");
  Timing again = RunTimed(cached, dashboard[0]);
  std::printf("Next identical query:          served from cache = %s (expected yes)\n",
              again.result.profile().counter(hive::obs::qc::kFromResultCache) ? "yes" : "no");
  return 0;
}
