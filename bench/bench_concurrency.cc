// Many-session throughput under true admission control: N client threads,
// each owning a Connection, fire a mixed workload (prepared point lookups
// via EXECUTE plus heavier TPC-DS-style aggregates) at a server running an
// active resource plan with separate `bi` and `etl` pools. Every submitted
// query must be accounted for — admitted, deadline-timed-out, or rejected;
// a single *lost* query (vanished without a terminal status) fails the
// bench. Two passes, plan cache off then on, report p50/p99 latency and
// throughput so the cache's effect on a prepared-heavy workload is visible.
//
// Emits BENCH_concurrency.json. `--smoke` runs 32 sessions for ctest.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

using namespace hive;
using namespace hive::bench;

namespace {

constexpr const char* kPointLookup =
    "PREPARE point AS SELECT COUNT(*) AS cnt, SUM(ss_quantity) AS qty "
    "FROM store_sales WHERE ss_item_sk = ?";

constexpr const char* kAggregate =
    "SELECT i_category, COUNT(*) AS cnt, SUM(ss_quantity) AS qty "
    "FROM store_sales, item WHERE ss_item_sk = i_item_sk "
    "GROUP BY i_category ORDER BY i_category";

struct SessionStats {
  int64_t submitted = 0;
  int64_t admitted = 0;   // ran to completion
  int64_t timed_out = 0;  // admission deadline expired
  int64_t rejected = 0;   // other resource-exhausted outcomes
  int64_t failed = 0;     // anything else — counts as lost
  std::vector<double> latencies_ms;

  void Merge(const SessionStats& other) {
    submitted += other.submitted;
    admitted += other.admitted;
    timed_out += other.timed_out;
    rejected += other.rejected;
    failed += other.failed;
    latencies_ms.insert(latencies_ms.end(), other.latencies_ms.begin(),
                        other.latencies_ms.end());
  }
};

struct PassResult {
  bool plan_cache = false;
  SessionStats stats;
  double wall_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double throughput_qps = 0;
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<long>(idx), v.end());
  return v[idx];
}

/// One simulated client: connects under its application, prepares the point
/// lookup once, then interleaves cheap EXECUTEs with the heavy aggregate.
void RunSession(HiveServer2* server, int session_idx, int queries, bool cache,
                SessionStats* out) {
  const bool etl = session_idx % 4 == 3;
  Connection conn = server->Connect(etl ? "etl" : "bi");
  conn.config().result_cache_enabled = false;
  conn.config().plan_cache_enabled = cache;
  conn.config().wlm_queue_timeout_ms = 30000;

  SessionStats stats;
  auto prep = conn.Execute(kPointLookup);
  if (!prep.ok()) {
    // A session that cannot even prepare loses all its queries.
    stats.submitted = stats.failed = queries;
    *out = std::move(stats);
    return;
  }
  for (int q = 0; q < queries; ++q) {
    const bool heavy = etl || q % 4 == 0;
    const int key = (session_idx * 31 + q * 7) % 1000 + 1;
    const std::string sql =
        heavy ? std::string(kAggregate)
              : "EXECUTE point (" + std::to_string(key) + ")";
    ++stats.submitted;
    int64_t t0 = SimClock::WallMicros();
    auto r = conn.Execute(sql);
    double ms = static_cast<double>(SimClock::WallMicros() - t0) / 1000.0;
    if (r.ok()) {
      ++stats.admitted;
      stats.latencies_ms.push_back(ms);
    } else if (r.status().code() == StatusCode::kResourceExhausted) {
      if (r.status().ToString().find("wlm.queue.timeout.ms") != std::string::npos)
        ++stats.timed_out;
      else
        ++stats.rejected;
    } else {
      std::fprintf(stderr, "session %d query lost: %s\n", session_idx,
                   r.status().ToString().c_str());
      ++stats.failed;
    }
  }
  *out = std::move(stats);
}

PassResult RunPass(HiveServer2* server, int sessions, int queries_per_session,
                   bool plan_cache) {
  const int64_t hits0 = server->plan_cache()->hits();
  const int64_t misses0 = server->plan_cache()->misses();

  std::vector<SessionStats> per_session(static_cast<size_t>(sessions));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(sessions));
  int64_t wall0 = SimClock::WallMicros();
  for (int i = 0; i < sessions; ++i)
    threads.emplace_back(RunSession, server, i, queries_per_session,
                         plan_cache, &per_session[static_cast<size_t>(i)]);
  for (auto& t : threads) t.join();

  PassResult pass;
  pass.plan_cache = plan_cache;
  pass.wall_ms = static_cast<double>(SimClock::WallMicros() - wall0) / 1000.0;
  for (const SessionStats& s : per_session) pass.stats.Merge(s);
  pass.p50_ms = Percentile(pass.stats.latencies_ms, 0.50);
  pass.p99_ms = Percentile(pass.stats.latencies_ms, 0.99);
  pass.throughput_qps =
      static_cast<double>(pass.stats.admitted) / (pass.wall_ms / 1000.0);
  pass.plan_cache_hits = server->plan_cache()->hits() - hits0;
  pass.plan_cache_misses = server->plan_cache()->misses() - misses0;
  return pass;
}

int64_t Lost(const PassResult& p) {
  return p.stats.failed + (p.stats.submitted - p.stats.admitted -
                           p.stats.timed_out - p.stats.rejected -
                           p.stats.failed);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int sessions = smoke ? 32 : 500;
  const int queries_per_session = smoke ? 4 : 8;

  MemFileSystem fs;
  Config config;
  config.container_startup_us = 0;
  config.num_executors = 8;
  HiveServer2 server(&fs, config);
  Connection admin = server.Connect();
  TpcdsOptions options;
  options.scale = 1;
  Must(LoadTpcds(admin, options));
  Must(admin
           .ExecuteScript(
               "CREATE RESOURCE PLAN conc;"
               "CREATE POOL conc.bi WITH alloc_fraction=0.7, "
               "query_parallelism=8;"
               "CREATE POOL conc.etl WITH alloc_fraction=0.3, "
               "query_parallelism=2;"
               "CREATE APPLICATION MAPPING bi IN conc TO bi;"
               "CREATE APPLICATION MAPPING etl IN conc TO etl;"
               "ALTER PLAN conc SET DEFAULT POOL = bi;"
               "ALTER RESOURCE PLAN conc ENABLE ACTIVATE;")
           .status());

  PrintHeader("Many-session concurrency (admission control + plan cache)");
  std::printf("sessions: %d, queries/session: %d, pools: bi(8) etl(2)\n",
              sessions, queries_per_session);
  std::printf("%-12s %10s %10s %10s %10s %6s %10s %10s %12s\n", "plan cache",
              "submitted", "admitted", "timed_out", "rejected", "lost",
              "p50 (ms)", "p99 (ms)", "qps");

  std::vector<PassResult> passes;
  for (bool cache : {false, true}) {
    PassResult pass = RunPass(&server, sessions, queries_per_session, cache);
    std::printf("%-12s %10lld %10lld %10lld %10lld %6lld %10.2f %10.2f %12.1f\n",
                cache ? "on" : "off",
                static_cast<long long>(pass.stats.submitted),
                static_cast<long long>(pass.stats.admitted),
                static_cast<long long>(pass.stats.timed_out),
                static_cast<long long>(pass.stats.rejected),
                static_cast<long long>(Lost(pass)), pass.p50_ms, pass.p99_ms,
                pass.throughput_qps);
    passes.push_back(std::move(pass));
  }

  int64_t total_lost = 0;
  for (const PassResult& p : passes) total_lost += Lost(p);
  if (total_lost != 0) {
    std::fprintf(stderr, "%lld queries lost — every submission must end in "
                         "admitted/timed_out/rejected\n",
                 static_cast<long long>(total_lost));
    return 1;
  }
  std::printf("\nall %lld submitted queries accounted for; none lost\n",
              static_cast<long long>(passes[0].stats.submitted +
                                     passes[1].stats.submitted));

  const int64_t queue_timeouts = server.metrics()->Value("wlm.queue.timeouts");
  const int64_t queue_admitted = server.metrics()->Value("wlm.queue.admitted");

  std::ofstream json("BENCH_concurrency.json");
  json << "{\n  \"benchmark\": \"concurrency\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"sessions\": " << sessions
       << ",\n  \"queries_per_session\": " << queries_per_session
       << ",\n  \"pools\": {\"bi\": 8, \"etl\": 2}"
       << ",\n  \"wlm_admitted\": " << queue_admitted
       << ",\n  \"wlm_timeouts\": " << queue_timeouts
       << ",\n  \"lost\": " << total_lost << ",\n  \"passes\": [\n";
  for (size_t i = 0; i < passes.size(); ++i) {
    const PassResult& p = passes[i];
    json << "    {\"plan_cache\": " << (p.plan_cache ? "true" : "false")
         << ", \"submitted\": " << p.stats.submitted
         << ", \"admitted\": " << p.stats.admitted
         << ", \"timed_out\": " << p.stats.timed_out
         << ", \"rejected\": " << p.stats.rejected
         << ", \"lost\": " << Lost(p) << ", \"p50_ms\": " << p.p50_ms
         << ", \"p99_ms\": " << p.p99_ms
         << ", \"throughput_qps\": " << p.throughput_qps
         << ", \"plan_cache_hits\": " << p.plan_cache_hits
         << ", \"plan_cache_misses\": " << p.plan_cache_misses << "}"
         << (i + 1 < passes.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_concurrency.json\n");
  return 0;
}
