// Section 4.6 ablation: dynamic semijoin reduction on star joins with a
// selective dimension filter. Reports row groups scanned + time with the
// optimization on vs off, and the dynamic-partition-pruning variant on a
// join keyed by the fact table's partition column.

#include "bench_util.h"

using namespace hive;
using namespace hive::bench;

int main() {
  MemFileSystem fs;
  HiveServer2 server(&fs, Config{});
  Connection session = server.Connect();
  TpcdsOptions options;
  options.scale = 2;
  if (Status load = LoadTpcds(session, options); !load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }

  Connection on = server.Connect();
  on.config().result_cache_enabled = false;
  Connection off = server.Connect();
  off.config().result_cache_enabled = false;
  off.config().semijoin_reduction_enabled = false;
  off.config().dynamic_partition_pruning_enabled = false;

  // Index-semijoin case: selective filter on item, fact scanned via Bloom.
  const std::string star =
      "SELECT SUM(ss_sales_price) FROM store_sales, item "
      "WHERE ss_item_sk = i_item_sk AND i_brand = 'Brand#7'";
  // Dynamic partition pruning case: dimension filter restricts the join key
  // that IS the fact table's partition column.
  const std::string dpp =
      "SELECT SUM(ss_sales_price) FROM store_sales, date_dim "
      "WHERE ss_sold_date_sk = d_date_sk AND d_moy = 2";

  auto measure = [&](Connection& s, const std::string& sql) {
    RunTimed(s, sql);  // warm
    double total = 0;
    QueryResult last;
    for (int r = 0; r < 5; ++r) {
      Timing t = RunTimed(s, sql);
      total += t.millis;
      last = t.result;
    }
    return std::make_pair(total / 5, last);
  };

  PrintHeader("Dynamic semijoin reduction (Section 4.6)");
  auto [on_ms, on_rows] = measure(on, star);
  auto [off_ms, off_rows] = measure(off, star);
  std::printf("index semijoin (Bloom + min/max pushdown into the fact scan):\n");
  std::printf("  %-24s %10.2f ms\n", "reduction OFF", off_ms);
  std::printf("  %-24s %10.2f ms   -> %.1fx\n", "reduction ON", on_ms,
              off_ms / std::max(on_ms, 0.01));
  std::printf("  results agree: %s\n",
              on_rows.rows == off_rows.rows ? "yes" : "NO (BUG)");

  auto [dpp_on_ms, dpp_on_rows] = measure(on, dpp);
  auto [dpp_off_ms, dpp_off_rows] = measure(off, dpp);
  std::printf("dynamic partition pruning (join key = partition column):\n");
  std::printf("  %-24s %10.2f ms\n", "pruning OFF", dpp_off_ms);
  std::printf("  %-24s %10.2f ms   -> %.1fx\n", "pruning ON", dpp_on_ms,
              dpp_off_ms / std::max(dpp_on_ms, 0.01));
  std::printf("  results agree: %s\n",
              dpp_on_rows.rows == dpp_off_rows.rows ? "yes" : "NO (BUG)");
  return 0;
}
