// Section 3.2 ablation: read latency as delta directories accumulate, and
// the effect of minor/major compaction. Reproduces the rationale the paper
// gives for periodic compaction: fewer directories, less merge effort at
// read time, shorter snapshots.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "fs/mem_filesystem.h"
#include "storage/acid.h"

namespace {
/// Table setup over MemFileSystem cannot legitimately fail; abort loudly
/// rather than silently benchmarking a half-built table.
void Must(const hive::Status& s) {
  if (!s.ok()) {
    fprintf(stderr, "bench setup failed: %s\n", s.ToString().c_str());
    abort();
  }
}
}  // namespace

namespace hive {
namespace {

Schema TableSchema() {
  Schema s;
  s.AddField("k", DataType::Bigint());
  s.AddField("v", DataType::Bigint());
  return s;
}

/// Builds a table with `num_deltas` committed single-write-id deltas plus a
/// spread of delete deltas, optionally compacted.
std::string BuildTable(MemFileSystem* fs, int num_deltas, bool minor, bool major) {
  static int sequence = 0;
  std::string dir = "/t" + std::to_string(sequence++);
  Schema schema = TableSchema();
  const int rows_per_delta = 2000;
  for (int d = 0; d < num_deltas; ++d) {
    AcidWriter writer(fs, dir, schema, d + 1);
    for (int64_t i = 0; i < rows_per_delta; ++i)
      writer.Insert({Value::Bigint(d * rows_per_delta + i), Value::Bigint(i % 97)});
    if (d % 3 == 1) {
      for (int64_t r = 0; r < 20; ++r) writer.Delete({d, 0, r * 3});
    }
    Must(writer.Commit());
  }
  ValidWriteIdList snapshot = ValidWriteIdList::All(num_deltas);
  Compactor compactor(fs, dir, schema);
  if (minor) {
    Must(compactor.RunMinor(snapshot));
    Must(compactor.Clean(snapshot));
  }
  if (major) {
    Must(compactor.RunMajor(snapshot));
    Must(compactor.Clean(snapshot));
  }
  return dir;
}

int64_t Scan(MemFileSystem* fs, const std::string& dir, int hwm) {
  AcidReader reader(fs, dir, TableSchema());
  Must(reader.Open(ValidWriteIdList::All(hwm), {}));
  bool done = false;
  int64_t rows = 0;
  for (;;) {
    auto batch = reader.NextBatch(&done);
    if (done) break;
    rows += static_cast<int64_t>(batch->SelectedSize());
  }
  return rows;
}

void BM_ScanWithDeltas(benchmark::State& state) {
  static MemFileSystem fs;
  int deltas = static_cast<int>(state.range(0));
  std::string dir = BuildTable(&fs, deltas, false, false);
  for (auto _ : state) benchmark::DoNotOptimize(Scan(&fs, dir, deltas));
  state.counters["deltas"] = deltas;
}
BENCHMARK(BM_ScanWithDeltas)->Arg(1)->Arg(5)->Arg(20)->Arg(50)
    ->Unit(benchmark::kMillisecond);

void BM_ScanAfterMinorCompaction(benchmark::State& state) {
  static MemFileSystem fs;
  int deltas = static_cast<int>(state.range(0));
  std::string dir = BuildTable(&fs, deltas, true, false);
  for (auto _ : state) benchmark::DoNotOptimize(Scan(&fs, dir, deltas));
  state.counters["deltas"] = deltas;
}
BENCHMARK(BM_ScanAfterMinorCompaction)->Arg(20)->Arg(50)
    ->Unit(benchmark::kMillisecond);

void BM_ScanAfterMajorCompaction(benchmark::State& state) {
  static MemFileSystem fs;
  int deltas = static_cast<int>(state.range(0));
  std::string dir = BuildTable(&fs, deltas, false, true);
  for (auto _ : state) benchmark::DoNotOptimize(Scan(&fs, dir, deltas));
  state.counters["deltas"] = deltas;
}
BENCHMARK(BM_ScanAfterMajorCompaction)->Arg(20)->Arg(50)
    ->Unit(benchmark::kMillisecond);

void BM_MinorCompactionCost(benchmark::State& state) {
  static MemFileSystem fs;
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = BuildTable(&fs, 20, false, false);
    Compactor compactor(&fs, dir, TableSchema());
    state.ResumeTiming();
    Must(compactor.RunMinor(ValidWriteIdList::All(20)));
  }
}
BENCHMARK(BM_MinorCompactionCost)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hive

BENCHMARK_MAIN();
