#ifndef HIVE_BENCH_BENCH_UTIL_H_
#define HIVE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "fs/mem_filesystem.h"
#include "server/hive_server.h"
#include "server/workload_loader.h"

namespace hive::bench {

/// Bench/example setup cannot legitimately fail; abort loudly if it does
/// rather than silently measuring a half-built table.
inline void Must(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n", s.ToString().c_str());
    std::abort();
  }
}

/// Measured execution of one statement: wall-clock work plus the modeled
/// cluster latency charged to the virtual clock (container start-up, MR
/// shuffle materialization). Reported together, as a real deployment's user
/// would perceive them.
struct Timing {
  bool ok = false;
  bool unsupported = false;
  double millis = 0;
  QueryResult result;
};

inline Timing RunTimed(Connection& conn, const std::string& sql) {
  Timing t;
  HiveServer2* server = conn.server();
  int64_t wall0 = SimClock::WallMicros();
  int64_t virt0 = server->clock()->virtual_us();
  auto r = conn.Execute(sql);
  int64_t wall = SimClock::WallMicros() - wall0;
  int64_t virt = server->clock()->virtual_us() - virt0;
  if (!r.ok()) {
    t.unsupported = r.status().IsNotSupported();
    if (!t.unsupported)
      std::fprintf(stderr, "query failed: %s\n  %s\n", r.status().ToString().c_str(),
                   sql.substr(0, 120).c_str());
    return t;
  }
  t.ok = true;
  t.millis = static_cast<double>(wall + virt) / 1000.0;
  t.result = std::move(*r);
  return t;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace hive::bench

#endif  // HIVE_BENCH_BENCH_UTIL_H_
