// Figure 7 reproduction: per-query response times on the TPC-DS-subset
// workload, "Hive 1.2" (MapReduce runtime, rule-based-only optimizer,
// restricted SQL surface) vs "Hive 3.1" (Tez+LLAP, CBO, full SQL).
//
// The paper reports: only 50 of 99 queries executable on v1.2; for those,
// v3.1 is 4.6x faster on average (up to 45.5x); v3.1's total time over ALL
// 99 queries is still 15% lower than v1.2's total over its 50.
//
// This harness prints the same structure: per-query times for both
// configurations ("unsupported" where the legacy mode rejects the query),
// the average/max speedup over the common subset, and the aggregate totals.

#include <algorithm>
#include <vector>

#include "bench_util.h"

using namespace hive;
using namespace hive::bench;

int main() {
  MemFileSystem fs;
  Config v31;  // defaults = Hive 3.1 mode
  HiveServer2 server(&fs, v31);
  Connection session = server.Connect();
  TpcdsOptions options;
  Status load = LoadTpcds(session, options);
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }

  Connection legacy = server.Connect();
  legacy.config().SetLegacyV12Mode();
  Connection modern = server.Connect();
  // Measure execution, not the result cache (the cache ablation is a
  // separate bench); keep the modeled container start-up proportionate to
  // this downscaled dataset.
  modern.config().result_cache_enabled = false;
  legacy.config().container_startup_us = 10000;
  modern.config().container_startup_us = 10000;

  PrintHeader("Figure 7: TPC-DS query response times, Hive 1.2 vs Hive 3.1");
  std::printf("%-22s %12s %12s %9s\n", "query", "v1.2 (ms)", "v3.1 (ms)", "speedup");

  double total_v12 = 0, total_v31_common = 0, total_v31_all = 0;
  double max_speedup = 0, sum_speedup = 0;
  int common = 0, v12_unsupported = 0;
  std::string max_query;
  auto queries = TpcdsQueries();
  // Warm both paths once (the paper reports warm-cache numbers).
  for (const auto& q : queries) {
    RunTimed(legacy, q.sql);
    RunTimed(modern, q.sql);
  }
  for (const auto& q : queries) {
    Timing old_time = RunTimed(legacy, q.sql);
    Timing new_time = RunTimed(modern, q.sql);
    if (!new_time.ok) {
      std::printf("%-22s %12s %12s %9s\n", q.name.c_str(), "-", "FAILED", "-");
      continue;
    }
    total_v31_all += new_time.millis;
    if (old_time.unsupported) {
      ++v12_unsupported;
      std::printf("%-22s %12s %12.2f %9s\n", q.name.c_str(), "unsupported",
                  new_time.millis, "-");
      continue;
    }
    double speedup = old_time.millis / std::max(new_time.millis, 0.01);
    total_v12 += old_time.millis;
    total_v31_common += new_time.millis;
    sum_speedup += speedup;
    ++common;
    if (speedup > max_speedup) {
      max_speedup = speedup;
      max_query = q.name;
    }
    std::printf("%-22s %12.2f %12.2f %8.1fx\n", q.name.c_str(), old_time.millis,
                new_time.millis, speedup);
  }

  std::printf("\nExecutable on v1.2: %d of %zu queries (%d rejected: missing SQL "
              "support, as in the paper)\n",
              common, queries.size(), v12_unsupported);
  if (common > 0) {
    std::printf("Average speedup on the common subset: %.1fx (paper: 4.6x)\n",
                sum_speedup / common);
    std::printf("Max speedup: %.1fx on %s (paper: 45.5x on q58)\n", max_speedup,
                max_query.c_str());
    std::printf("Aggregate v1.2 over %d queries:   %10.2f ms\n", common, total_v12);
    std::printf("Aggregate v3.1 over ALL queries:  %10.2f ms (%+.0f%% vs v1.2 "
                "subset; paper: -15%%)\n",
                total_v31_all, 100.0 * (total_v31_all - total_v12) / total_v12);
  }
  return 0;
}
