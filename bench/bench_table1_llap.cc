// Table 1 reproduction: aggregate response time for the TPC-DS query set
// executed in Hive 3.1 with identical configuration except LLAP on/off.
// The paper reports 41576s (container) vs 15540s (LLAP): a 2.7x reduction.
//
// The LLAP advantage here comes from the same sources as in the paper:
// persistent executors (no per-query container allocation charged to the
// virtual clock) and the shared data cache serving warm scans.

#include "bench_util.h"

using namespace hive;
using namespace hive::bench;

int main() {
  MemFileSystem fs;
  Config config;
  // Scale the modeled YARN-container allocation latency to this downsized
  // dataset (the paper's queries run for seconds-to-minutes; ours for ms).
  config.container_startup_us = 30000;
  HiveServer2 server(&fs, config);
  Connection session = server.Connect();
  if (Status load = LoadTpcds(session, TpcdsOptions{}); !load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }

  Connection container = server.Connect();
  container.config().llap_enabled = false;  // Tez containers, no cache
  container.config().result_cache_enabled = false;
  Connection llap = server.Connect();
  llap.config().result_cache_enabled = false;

  auto queries = TpcdsQueries();
  // Warm cache runs (the paper reports averages over warm-cache runs).
  for (const auto& q : queries) {
    RunTimed(container, q.sql);
    RunTimed(llap, q.sql);
  }

  double total_container = 0, total_llap = 0;
  int executed = 0;
  for (const auto& q : queries) {
    Timing without = RunTimed(container, q.sql);
    Timing with = RunTimed(llap, q.sql);
    if (!without.ok || !with.ok) continue;
    total_container += without.millis;
    total_llap += with.millis;
    ++executed;
  }

  PrintHeader("Table 1: response time improvement using LLAP");
  std::printf("%-28s %16s\n", "Execution mode", "Total time (ms)");
  std::printf("%-28s %16.2f\n", "Container (without LLAP)", total_container);
  std::printf("%-28s %16.2f\n", "LLAP", total_llap);
  std::printf("\nSpeedup: %.1fx over %d queries (paper: 2.7x)\n",
              total_container / std::max(total_llap, 0.01), executed);
  std::printf("LLAP cache: %llu hits, %llu misses, %zu chunks resident\n",
              static_cast<unsigned long long>(server.llap()->cache()->data_hits()),
              static_cast<unsigned long long>(server.llap()->cache()->data_misses()),
              server.llap()->cache()->cached_chunks());
  return 0;
}
