# Empty dependencies file for bench_result_cache.
# This may be replaced when dependencies are built.
