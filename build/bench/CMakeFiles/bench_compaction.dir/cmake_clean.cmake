file(REMOVE_RECURSE
  "CMakeFiles/bench_compaction.dir/bench_compaction.cc.o"
  "CMakeFiles/bench_compaction.dir/bench_compaction.cc.o.d"
  "bench_compaction"
  "bench_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
