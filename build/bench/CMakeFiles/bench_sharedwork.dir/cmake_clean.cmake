file(REMOVE_RECURSE
  "CMakeFiles/bench_sharedwork.dir/bench_sharedwork.cc.o"
  "CMakeFiles/bench_sharedwork.dir/bench_sharedwork.cc.o.d"
  "bench_sharedwork"
  "bench_sharedwork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharedwork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
