# Empty compiler generated dependencies file for bench_sharedwork.
# This may be replaced when dependencies are built.
