file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_druid.dir/bench_fig8_druid.cc.o"
  "CMakeFiles/bench_fig8_druid.dir/bench_fig8_druid.cc.o.d"
  "bench_fig8_druid"
  "bench_fig8_druid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_druid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
