file(REMOVE_RECURSE
  "CMakeFiles/bench_semijoin.dir/bench_semijoin.cc.o"
  "CMakeFiles/bench_semijoin.dir/bench_semijoin.cc.o.d"
  "bench_semijoin"
  "bench_semijoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_semijoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
