# Empty dependencies file for bench_semijoin.
# This may be replaced when dependencies are built.
