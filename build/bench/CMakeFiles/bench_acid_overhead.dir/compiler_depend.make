# Empty compiler generated dependencies file for bench_acid_overhead.
# This may be replaced when dependencies are built.
