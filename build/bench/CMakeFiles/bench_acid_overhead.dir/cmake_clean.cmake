file(REMOVE_RECURSE
  "CMakeFiles/bench_acid_overhead.dir/bench_acid_overhead.cc.o"
  "CMakeFiles/bench_acid_overhead.dir/bench_acid_overhead.cc.o.d"
  "bench_acid_overhead"
  "bench_acid_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_acid_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
