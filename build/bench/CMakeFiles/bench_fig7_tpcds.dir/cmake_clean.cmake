file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tpcds.dir/bench_fig7_tpcds.cc.o"
  "CMakeFiles/bench_fig7_tpcds.dir/bench_fig7_tpcds.cc.o.d"
  "bench_fig7_tpcds"
  "bench_fig7_tpcds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tpcds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
