# Empty dependencies file for bench_fig7_tpcds.
# This may be replaced when dependencies are built.
