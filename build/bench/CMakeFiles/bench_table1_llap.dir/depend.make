# Empty dependencies file for bench_table1_llap.
# This may be replaced when dependencies are built.
