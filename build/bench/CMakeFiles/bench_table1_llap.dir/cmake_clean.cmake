file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_llap.dir/bench_table1_llap.cc.o"
  "CMakeFiles/bench_table1_llap.dir/bench_table1_llap.cc.o.d"
  "bench_table1_llap"
  "bench_table1_llap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_llap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
