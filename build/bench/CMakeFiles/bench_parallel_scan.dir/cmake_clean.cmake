file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_scan.dir/bench_parallel_scan.cc.o"
  "CMakeFiles/bench_parallel_scan.dir/bench_parallel_scan.cc.o.d"
  "bench_parallel_scan"
  "bench_parallel_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
