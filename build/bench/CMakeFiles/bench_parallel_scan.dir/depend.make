# Empty dependencies file for bench_parallel_scan.
# This may be replaced when dependencies are built.
