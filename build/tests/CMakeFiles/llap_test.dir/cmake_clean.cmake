file(REMOVE_RECURSE
  "CMakeFiles/llap_test.dir/llap_test.cc.o"
  "CMakeFiles/llap_test.dir/llap_test.cc.o.d"
  "llap_test"
  "llap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
