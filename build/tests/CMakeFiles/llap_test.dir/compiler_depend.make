# Empty compiler generated dependencies file for llap_test.
# This may be replaced when dependencies are built.
