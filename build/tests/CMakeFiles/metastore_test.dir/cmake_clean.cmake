file(REMOVE_RECURSE
  "CMakeFiles/metastore_test.dir/metastore_test.cc.o"
  "CMakeFiles/metastore_test.dir/metastore_test.cc.o.d"
  "metastore_test"
  "metastore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metastore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
