# Empty compiler generated dependencies file for metastore_test.
# This may be replaced when dependencies are built.
