# Empty compiler generated dependencies file for droid_test.
# This may be replaced when dependencies are built.
