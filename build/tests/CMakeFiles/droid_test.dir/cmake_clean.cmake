file(REMOVE_RECURSE
  "CMakeFiles/droid_test.dir/droid_test.cc.o"
  "CMakeFiles/droid_test.dir/droid_test.cc.o.d"
  "droid_test"
  "droid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
