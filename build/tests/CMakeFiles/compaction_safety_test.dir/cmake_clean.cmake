file(REMOVE_RECURSE
  "CMakeFiles/compaction_safety_test.dir/compaction_safety_test.cc.o"
  "CMakeFiles/compaction_safety_test.dir/compaction_safety_test.cc.o.d"
  "compaction_safety_test"
  "compaction_safety_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compaction_safety_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
