
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metastore/catalog.cc" "src/CMakeFiles/hive_metastore.dir/metastore/catalog.cc.o" "gcc" "src/CMakeFiles/hive_metastore.dir/metastore/catalog.cc.o.d"
  "/root/repo/src/metastore/compaction_manager.cc" "src/CMakeFiles/hive_metastore.dir/metastore/compaction_manager.cc.o" "gcc" "src/CMakeFiles/hive_metastore.dir/metastore/compaction_manager.cc.o.d"
  "/root/repo/src/metastore/txn_manager.cc" "src/CMakeFiles/hive_metastore.dir/metastore/txn_manager.cc.o" "gcc" "src/CMakeFiles/hive_metastore.dir/metastore/txn_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hive_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hive_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hive_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
