file(REMOVE_RECURSE
  "libhive_metastore.a"
)
