file(REMOVE_RECURSE
  "CMakeFiles/hive_metastore.dir/metastore/catalog.cc.o"
  "CMakeFiles/hive_metastore.dir/metastore/catalog.cc.o.d"
  "CMakeFiles/hive_metastore.dir/metastore/compaction_manager.cc.o"
  "CMakeFiles/hive_metastore.dir/metastore/compaction_manager.cc.o.d"
  "CMakeFiles/hive_metastore.dir/metastore/txn_manager.cc.o"
  "CMakeFiles/hive_metastore.dir/metastore/txn_manager.cc.o.d"
  "libhive_metastore.a"
  "libhive_metastore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_metastore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
