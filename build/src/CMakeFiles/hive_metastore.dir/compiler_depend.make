# Empty compiler generated dependencies file for hive_metastore.
# This may be replaced when dependencies are built.
