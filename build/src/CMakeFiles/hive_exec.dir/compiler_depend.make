# Empty compiler generated dependencies file for hive_exec.
# This may be replaced when dependencies are built.
