
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/agg_operator.cc" "src/CMakeFiles/hive_exec.dir/exec/agg_operator.cc.o" "gcc" "src/CMakeFiles/hive_exec.dir/exec/agg_operator.cc.o.d"
  "/root/repo/src/exec/compiler.cc" "src/CMakeFiles/hive_exec.dir/exec/compiler.cc.o" "gcc" "src/CMakeFiles/hive_exec.dir/exec/compiler.cc.o.d"
  "/root/repo/src/exec/exec_context.cc" "src/CMakeFiles/hive_exec.dir/exec/exec_context.cc.o" "gcc" "src/CMakeFiles/hive_exec.dir/exec/exec_context.cc.o.d"
  "/root/repo/src/exec/join_operator.cc" "src/CMakeFiles/hive_exec.dir/exec/join_operator.cc.o" "gcc" "src/CMakeFiles/hive_exec.dir/exec/join_operator.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/CMakeFiles/hive_exec.dir/exec/operator.cc.o" "gcc" "src/CMakeFiles/hive_exec.dir/exec/operator.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/hive_exec.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/hive_exec.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/parallel_scan.cc" "src/CMakeFiles/hive_exec.dir/exec/parallel_scan.cc.o" "gcc" "src/CMakeFiles/hive_exec.dir/exec/parallel_scan.cc.o.d"
  "/root/repo/src/exec/scan_operator.cc" "src/CMakeFiles/hive_exec.dir/exec/scan_operator.cc.o" "gcc" "src/CMakeFiles/hive_exec.dir/exec/scan_operator.cc.o.d"
  "/root/repo/src/exec/sort_window_operator.cc" "src/CMakeFiles/hive_exec.dir/exec/sort_window_operator.cc.o" "gcc" "src/CMakeFiles/hive_exec.dir/exec/sort_window_operator.cc.o.d"
  "/root/repo/src/exec/vector_eval.cc" "src/CMakeFiles/hive_exec.dir/exec/vector_eval.cc.o" "gcc" "src/CMakeFiles/hive_exec.dir/exec/vector_eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hive_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hive_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hive_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hive_metastore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hive_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hive_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
