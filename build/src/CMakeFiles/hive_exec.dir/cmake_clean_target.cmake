file(REMOVE_RECURSE
  "libhive_exec.a"
)
