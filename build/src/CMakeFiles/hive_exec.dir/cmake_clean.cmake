file(REMOVE_RECURSE
  "CMakeFiles/hive_exec.dir/exec/agg_operator.cc.o"
  "CMakeFiles/hive_exec.dir/exec/agg_operator.cc.o.d"
  "CMakeFiles/hive_exec.dir/exec/compiler.cc.o"
  "CMakeFiles/hive_exec.dir/exec/compiler.cc.o.d"
  "CMakeFiles/hive_exec.dir/exec/exec_context.cc.o"
  "CMakeFiles/hive_exec.dir/exec/exec_context.cc.o.d"
  "CMakeFiles/hive_exec.dir/exec/join_operator.cc.o"
  "CMakeFiles/hive_exec.dir/exec/join_operator.cc.o.d"
  "CMakeFiles/hive_exec.dir/exec/operator.cc.o"
  "CMakeFiles/hive_exec.dir/exec/operator.cc.o.d"
  "CMakeFiles/hive_exec.dir/exec/operators.cc.o"
  "CMakeFiles/hive_exec.dir/exec/operators.cc.o.d"
  "CMakeFiles/hive_exec.dir/exec/parallel_scan.cc.o"
  "CMakeFiles/hive_exec.dir/exec/parallel_scan.cc.o.d"
  "CMakeFiles/hive_exec.dir/exec/scan_operator.cc.o"
  "CMakeFiles/hive_exec.dir/exec/scan_operator.cc.o.d"
  "CMakeFiles/hive_exec.dir/exec/sort_window_operator.cc.o"
  "CMakeFiles/hive_exec.dir/exec/sort_window_operator.cc.o.d"
  "CMakeFiles/hive_exec.dir/exec/vector_eval.cc.o"
  "CMakeFiles/hive_exec.dir/exec/vector_eval.cc.o.d"
  "libhive_exec.a"
  "libhive_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
