# Empty compiler generated dependencies file for hive_storage.
# This may be replaced when dependencies are built.
