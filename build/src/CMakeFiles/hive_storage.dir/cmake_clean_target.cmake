file(REMOVE_RECURSE
  "libhive_storage.a"
)
