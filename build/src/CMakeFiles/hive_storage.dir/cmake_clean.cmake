file(REMOVE_RECURSE
  "CMakeFiles/hive_storage.dir/storage/acid.cc.o"
  "CMakeFiles/hive_storage.dir/storage/acid.cc.o.d"
  "CMakeFiles/hive_storage.dir/storage/cof.cc.o"
  "CMakeFiles/hive_storage.dir/storage/cof.cc.o.d"
  "CMakeFiles/hive_storage.dir/storage/sarg.cc.o"
  "CMakeFiles/hive_storage.dir/storage/sarg.cc.o.d"
  "libhive_storage.a"
  "libhive_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
