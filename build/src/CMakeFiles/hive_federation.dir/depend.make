# Empty dependencies file for hive_federation.
# This may be replaced when dependencies are built.
