file(REMOVE_RECURSE
  "CMakeFiles/hive_federation.dir/federation/csv_handler.cc.o"
  "CMakeFiles/hive_federation.dir/federation/csv_handler.cc.o.d"
  "CMakeFiles/hive_federation.dir/federation/droid.cc.o"
  "CMakeFiles/hive_federation.dir/federation/droid.cc.o.d"
  "CMakeFiles/hive_federation.dir/federation/droid_handler.cc.o"
  "CMakeFiles/hive_federation.dir/federation/droid_handler.cc.o.d"
  "CMakeFiles/hive_federation.dir/federation/materialized_operator.cc.o"
  "CMakeFiles/hive_federation.dir/federation/materialized_operator.cc.o.d"
  "CMakeFiles/hive_federation.dir/federation/pushdown.cc.o"
  "CMakeFiles/hive_federation.dir/federation/pushdown.cc.o.d"
  "libhive_federation.a"
  "libhive_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
