file(REMOVE_RECURSE
  "libhive_federation.a"
)
