file(REMOVE_RECURSE
  "CMakeFiles/hive_common.dir/common/bloom_filter.cc.o"
  "CMakeFiles/hive_common.dir/common/bloom_filter.cc.o.d"
  "CMakeFiles/hive_common.dir/common/column_vector.cc.o"
  "CMakeFiles/hive_common.dir/common/column_vector.cc.o.d"
  "CMakeFiles/hive_common.dir/common/hash.cc.o"
  "CMakeFiles/hive_common.dir/common/hash.cc.o.d"
  "CMakeFiles/hive_common.dir/common/hll.cc.o"
  "CMakeFiles/hive_common.dir/common/hll.cc.o.d"
  "CMakeFiles/hive_common.dir/common/schema.cc.o"
  "CMakeFiles/hive_common.dir/common/schema.cc.o.d"
  "CMakeFiles/hive_common.dir/common/status.cc.o"
  "CMakeFiles/hive_common.dir/common/status.cc.o.d"
  "CMakeFiles/hive_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/hive_common.dir/common/thread_pool.cc.o.d"
  "CMakeFiles/hive_common.dir/common/types.cc.o"
  "CMakeFiles/hive_common.dir/common/types.cc.o.d"
  "libhive_common.a"
  "libhive_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
