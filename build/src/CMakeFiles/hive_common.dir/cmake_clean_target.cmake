file(REMOVE_RECURSE
  "libhive_common.a"
)
