
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bloom_filter.cc" "src/CMakeFiles/hive_common.dir/common/bloom_filter.cc.o" "gcc" "src/CMakeFiles/hive_common.dir/common/bloom_filter.cc.o.d"
  "/root/repo/src/common/column_vector.cc" "src/CMakeFiles/hive_common.dir/common/column_vector.cc.o" "gcc" "src/CMakeFiles/hive_common.dir/common/column_vector.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/hive_common.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/hive_common.dir/common/hash.cc.o.d"
  "/root/repo/src/common/hll.cc" "src/CMakeFiles/hive_common.dir/common/hll.cc.o" "gcc" "src/CMakeFiles/hive_common.dir/common/hll.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/CMakeFiles/hive_common.dir/common/schema.cc.o" "gcc" "src/CMakeFiles/hive_common.dir/common/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/hive_common.dir/common/status.cc.o" "gcc" "src/CMakeFiles/hive_common.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/hive_common.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/hive_common.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/common/types.cc" "src/CMakeFiles/hive_common.dir/common/types.cc.o" "gcc" "src/CMakeFiles/hive_common.dir/common/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
