# Empty dependencies file for hive_common.
# This may be replaced when dependencies are built.
