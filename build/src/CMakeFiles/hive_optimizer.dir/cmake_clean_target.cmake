file(REMOVE_RECURSE
  "libhive_optimizer.a"
)
