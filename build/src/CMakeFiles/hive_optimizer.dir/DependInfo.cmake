
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/binder.cc" "src/CMakeFiles/hive_optimizer.dir/optimizer/binder.cc.o" "gcc" "src/CMakeFiles/hive_optimizer.dir/optimizer/binder.cc.o.d"
  "/root/repo/src/optimizer/expr_eval.cc" "src/CMakeFiles/hive_optimizer.dir/optimizer/expr_eval.cc.o" "gcc" "src/CMakeFiles/hive_optimizer.dir/optimizer/expr_eval.cc.o.d"
  "/root/repo/src/optimizer/mv_rewrite.cc" "src/CMakeFiles/hive_optimizer.dir/optimizer/mv_rewrite.cc.o" "gcc" "src/CMakeFiles/hive_optimizer.dir/optimizer/mv_rewrite.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/hive_optimizer.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/hive_optimizer.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/rel.cc" "src/CMakeFiles/hive_optimizer.dir/optimizer/rel.cc.o" "gcc" "src/CMakeFiles/hive_optimizer.dir/optimizer/rel.cc.o.d"
  "/root/repo/src/optimizer/rules.cc" "src/CMakeFiles/hive_optimizer.dir/optimizer/rules.cc.o" "gcc" "src/CMakeFiles/hive_optimizer.dir/optimizer/rules.cc.o.d"
  "/root/repo/src/optimizer/stats.cc" "src/CMakeFiles/hive_optimizer.dir/optimizer/stats.cc.o" "gcc" "src/CMakeFiles/hive_optimizer.dir/optimizer/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hive_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hive_metastore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hive_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hive_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hive_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
