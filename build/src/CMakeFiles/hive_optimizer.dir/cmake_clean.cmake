file(REMOVE_RECURSE
  "CMakeFiles/hive_optimizer.dir/optimizer/binder.cc.o"
  "CMakeFiles/hive_optimizer.dir/optimizer/binder.cc.o.d"
  "CMakeFiles/hive_optimizer.dir/optimizer/expr_eval.cc.o"
  "CMakeFiles/hive_optimizer.dir/optimizer/expr_eval.cc.o.d"
  "CMakeFiles/hive_optimizer.dir/optimizer/mv_rewrite.cc.o"
  "CMakeFiles/hive_optimizer.dir/optimizer/mv_rewrite.cc.o.d"
  "CMakeFiles/hive_optimizer.dir/optimizer/optimizer.cc.o"
  "CMakeFiles/hive_optimizer.dir/optimizer/optimizer.cc.o.d"
  "CMakeFiles/hive_optimizer.dir/optimizer/rel.cc.o"
  "CMakeFiles/hive_optimizer.dir/optimizer/rel.cc.o.d"
  "CMakeFiles/hive_optimizer.dir/optimizer/rules.cc.o"
  "CMakeFiles/hive_optimizer.dir/optimizer/rules.cc.o.d"
  "CMakeFiles/hive_optimizer.dir/optimizer/stats.cc.o"
  "CMakeFiles/hive_optimizer.dir/optimizer/stats.cc.o.d"
  "libhive_optimizer.a"
  "libhive_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
