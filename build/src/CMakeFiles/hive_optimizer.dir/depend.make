# Empty dependencies file for hive_optimizer.
# This may be replaced when dependencies are built.
