file(REMOVE_RECURSE
  "CMakeFiles/hive_sql.dir/sql/ast.cc.o"
  "CMakeFiles/hive_sql.dir/sql/ast.cc.o.d"
  "CMakeFiles/hive_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/hive_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/hive_sql.dir/sql/parser.cc.o"
  "CMakeFiles/hive_sql.dir/sql/parser.cc.o.d"
  "libhive_sql.a"
  "libhive_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
