# Empty dependencies file for hive_sql.
# This may be replaced when dependencies are built.
