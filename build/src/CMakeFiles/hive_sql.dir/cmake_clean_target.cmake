file(REMOVE_RECURSE
  "libhive_sql.a"
)
