file(REMOVE_RECURSE
  "CMakeFiles/hive_workloads.dir/workloads/ssb.cc.o"
  "CMakeFiles/hive_workloads.dir/workloads/ssb.cc.o.d"
  "CMakeFiles/hive_workloads.dir/workloads/tpcds.cc.o"
  "CMakeFiles/hive_workloads.dir/workloads/tpcds.cc.o.d"
  "libhive_workloads.a"
  "libhive_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
