file(REMOVE_RECURSE
  "CMakeFiles/hive_server.dir/server/dml.cc.o"
  "CMakeFiles/hive_server.dir/server/dml.cc.o.d"
  "CMakeFiles/hive_server.dir/server/hive_server.cc.o"
  "CMakeFiles/hive_server.dir/server/hive_server.cc.o.d"
  "CMakeFiles/hive_server.dir/server/result_cache.cc.o"
  "CMakeFiles/hive_server.dir/server/result_cache.cc.o.d"
  "CMakeFiles/hive_server.dir/server/workload_manager.cc.o"
  "CMakeFiles/hive_server.dir/server/workload_manager.cc.o.d"
  "libhive_server.a"
  "libhive_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
