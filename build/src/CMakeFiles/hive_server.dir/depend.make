# Empty dependencies file for hive_server.
# This may be replaced when dependencies are built.
