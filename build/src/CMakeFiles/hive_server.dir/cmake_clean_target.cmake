file(REMOVE_RECURSE
  "libhive_server.a"
)
