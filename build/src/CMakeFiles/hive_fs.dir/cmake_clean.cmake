file(REMOVE_RECURSE
  "CMakeFiles/hive_fs.dir/fs/fault_injection.cc.o"
  "CMakeFiles/hive_fs.dir/fs/fault_injection.cc.o.d"
  "CMakeFiles/hive_fs.dir/fs/filesystem.cc.o"
  "CMakeFiles/hive_fs.dir/fs/filesystem.cc.o.d"
  "CMakeFiles/hive_fs.dir/fs/local_filesystem.cc.o"
  "CMakeFiles/hive_fs.dir/fs/local_filesystem.cc.o.d"
  "CMakeFiles/hive_fs.dir/fs/mem_filesystem.cc.o"
  "CMakeFiles/hive_fs.dir/fs/mem_filesystem.cc.o.d"
  "libhive_fs.a"
  "libhive_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
