
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/fault_injection.cc" "src/CMakeFiles/hive_fs.dir/fs/fault_injection.cc.o" "gcc" "src/CMakeFiles/hive_fs.dir/fs/fault_injection.cc.o.d"
  "/root/repo/src/fs/filesystem.cc" "src/CMakeFiles/hive_fs.dir/fs/filesystem.cc.o" "gcc" "src/CMakeFiles/hive_fs.dir/fs/filesystem.cc.o.d"
  "/root/repo/src/fs/local_filesystem.cc" "src/CMakeFiles/hive_fs.dir/fs/local_filesystem.cc.o" "gcc" "src/CMakeFiles/hive_fs.dir/fs/local_filesystem.cc.o.d"
  "/root/repo/src/fs/mem_filesystem.cc" "src/CMakeFiles/hive_fs.dir/fs/mem_filesystem.cc.o" "gcc" "src/CMakeFiles/hive_fs.dir/fs/mem_filesystem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hive_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
