file(REMOVE_RECURSE
  "libhive_fs.a"
)
