# Empty dependencies file for hive_fs.
# This may be replaced when dependencies are built.
