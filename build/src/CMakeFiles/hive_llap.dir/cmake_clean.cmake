file(REMOVE_RECURSE
  "CMakeFiles/hive_llap.dir/llap/llap_cache.cc.o"
  "CMakeFiles/hive_llap.dir/llap/llap_cache.cc.o.d"
  "libhive_llap.a"
  "libhive_llap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_llap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
