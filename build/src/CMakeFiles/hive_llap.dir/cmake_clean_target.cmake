file(REMOVE_RECURSE
  "libhive_llap.a"
)
