# Empty dependencies file for hive_llap.
# This may be replaced when dependencies are built.
