file(REMOVE_RECURSE
  "CMakeFiles/example_materialized_views.dir/materialized_views.cpp.o"
  "CMakeFiles/example_materialized_views.dir/materialized_views.cpp.o.d"
  "example_materialized_views"
  "example_materialized_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_materialized_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
