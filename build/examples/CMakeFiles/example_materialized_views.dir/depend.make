# Empty dependencies file for example_materialized_views.
# This may be replaced when dependencies are built.
