# Empty dependencies file for example_federation_droid.
# This may be replaced when dependencies are built.
