file(REMOVE_RECURSE
  "CMakeFiles/example_federation_droid.dir/federation_droid.cpp.o"
  "CMakeFiles/example_federation_droid.dir/federation_droid.cpp.o.d"
  "example_federation_droid"
  "example_federation_droid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_federation_droid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
