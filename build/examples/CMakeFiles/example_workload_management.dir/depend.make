# Empty dependencies file for example_workload_management.
# This may be replaced when dependencies are built.
