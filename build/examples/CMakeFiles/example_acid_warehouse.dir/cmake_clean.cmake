file(REMOVE_RECURSE
  "CMakeFiles/example_acid_warehouse.dir/acid_warehouse.cpp.o"
  "CMakeFiles/example_acid_warehouse.dir/acid_warehouse.cpp.o.d"
  "example_acid_warehouse"
  "example_acid_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_acid_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
