# Empty dependencies file for example_acid_warehouse.
# This may be replaced when dependencies are built.
