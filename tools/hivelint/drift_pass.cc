// Pass: drift — cross-references the registries that otherwise rot
// silently, so a knob nobody reads or a typo'd metric name is a lint error
// instead of a forever-zero counter.
//
// Knobs (src/common/config.h): every Config member must appear in the
// HIVE_CONFIG_FIELDS X-macro (that list is what the session/server config
// layering iterates — an unregistered member silently never layers), every
// registered knob must be read somewhere in src/ outside config.h, and its
// public dotted name must appear in README.md:
//
//   knob-unregistered  Config member missing from HIVE_CONFIG_FIELDS
//   knob-dead          registered knob never read anywhere in src/
//   knob-undocumented  registered knob's public name absent from README.md
//
// Metrics (src/obs/metric_names.h): every metric-name string lives there
// exactly once, and call sites reference the constants:
//
//   metric-literal    a string literal handed to counter()/gauge()/
//                     histogram()/RegisterCallback()/CountSpillMetric()/
//                     AddCounter() in src/ outside metric_names.h
//   metric-dead       a metric_names.h constant referenced nowhere in src/
//   metric-duplicate  two constants naming the same metric string
//
// The registry files are parsed from raw text (the names live inside string
// literals, which the stripped view blanks); both have a fixed, owned
// format, so a line-based parse is reliable.

#include <map>
#include <set>

#include "passes.h"

namespace hivelint {
namespace {

const char kConfigPath[] = "src/common/config.h";
const char kMetricNamesPath[] = "src/obs/metric_names.h";

// Call sites whose string-literal argument is a metric name.
const char* const kMetricCalls[] = {"counter",          "gauge",
                                    "histogram",        "RegisterCallback",
                                    "CountSpillMetric", "AddCounter"};

std::string TruncateLineComment(const std::string& raw) {
  size_t pos = raw.find("//");
  return pos == std::string::npos ? raw : raw.substr(0, pos);
}

// Extracts the quoted string starting at or after `from`; "" if none.
std::string QuotedString(const std::string& line, size_t from) {
  size_t open = line.find('"', from);
  if (open == std::string::npos) return "";
  size_t close = line.find('"', open + 1);
  if (close == std::string::npos) return "";
  return line.substr(open + 1, close - open - 1);
}

struct RegistryEntry {
  std::string ident;   // Config field / constant identifier
  std::string pub;     // dotted public name / metric string
  size_t line = 0;     // 1-based declaration line
};

const SourceFile* FindFile(const Project& project, const std::string& rel) {
  for (const SourceFile& f : project.files)
    if (f.rel == rel) return &f;
  return nullptr;
}

// True when `ident` occurs as a token in any src/ file other than `except`.
bool UsedInSrc(const Project& project, const std::string& ident,
               const std::string& except) {
  for (const SourceFile& f : project.files) {
    if (!StartsWith(f.rel, "src/") || f.rel == except) continue;
    for (const std::string& line : f.code)
      if (FindToken(line, ident) != std::string::npos) return true;
  }
  return false;
}

void CheckKnobs(const Project& project, std::vector<Finding>* findings) {
  const SourceFile* config = FindFile(project, kConfigPath);
  if (!config) return;  // project without a config registry (fixture trees)

  // Config members: lines of the form `<type> <ident> = <default>;` at
  // class-body depth inside `class Config`.
  std::map<std::string, size_t> members;  // ident -> line index
  {
    bool in_class = false;
    int depth = 0;       // brace depth at the start of the current line
    int body_depth = 0;  // depth of the class body (class may sit in a namespace)
    for (size_t i = 0; i < config->code.size(); ++i) {
      const std::string& line = config->code[i];
      if (!in_class && FindToken(line, "class") != std::string::npos &&
          FindToken(line, "Config") != std::string::npos) {
        in_class = true;
        body_depth = depth + 1;
      }
      if (in_class && depth == body_depth) {
        size_t eq = line.find('=');
        size_t semi = line.rfind(';');
        if (eq != std::string::npos && semi != std::string::npos && eq < semi) {
          // Identifier immediately left of '='.
          size_t e = eq;
          while (e > 0 && (line[e - 1] == ' ' || line[e - 1] == '\t')) --e;
          size_t s = e;
          while (s > 0 && IsWordChar(line[s - 1])) --s;
          // Needs a type in front (rules out `a = b;` statement bodies,
          // which are deeper than depth 1 anyway).
          if (e > s && s > 0 && SkipSpaces(line, 0) < s)
            members.emplace(line.substr(s, e - s), i);
        }
      }
      for (char c : line) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
      if (in_class && depth < body_depth) break;
    }
  }

  // HIVE_CONFIG_FIELDS entries: `X(ident, "public.name")` continuation lines.
  std::vector<RegistryEntry> knobs;
  for (size_t i = 0; i < config->raw.size(); ++i) {
    std::string line = TruncateLineComment(config->raw[i]);
    size_t p = SkipSpaces(line, 0);
    if (line.compare(p, 2, "X(") != 0) continue;
    size_t s = p + 2;
    size_t e = s;
    while (e < line.size() && IsWordChar(line[e])) ++e;
    if (e == s) continue;
    RegistryEntry entry;
    entry.ident = line.substr(s, e - s);
    entry.pub = QuotedString(line, e);
    entry.line = i + 1;
    knobs.push_back(entry);
  }

  std::set<std::string> registered;
  for (const RegistryEntry& k : knobs) registered.insert(k.ident);
  for (const auto& [ident, line_index] : members) {
    if (!registered.count(ident))
      findings->push_back(
          {config->display, line_index + 1, "knob-unregistered",
           "Config member '" + ident +
               "' is missing from HIVE_CONFIG_FIELDS; unregistered knobs "
               "silently skip session/server config layering"});
  }

  for (const RegistryEntry& k : knobs) {
    if (!UsedInSrc(project, k.ident, kConfigPath))
      findings->push_back(
          {config->display, k.line, "knob-dead",
           "config knob '" + k.ident +
               "' is never read anywhere in src/; wire it up or delete it"});
    if (!k.pub.empty() && project.has_readme &&
        project.readme.find(k.pub) == std::string::npos)
      findings->push_back(
          {config->display, k.line, "knob-undocumented",
           "config knob '" + k.ident + "' (public name \"" + k.pub +
               "\") is not documented in README.md; every knob a user can "
               "set gets a row in the configuration reference"});
  }
}

void CheckMetrics(const Project& project, std::vector<Finding>* findings) {
  const SourceFile* names = FindFile(project, kMetricNamesPath);

  if (names) {
    // `inline constexpr char kIdent[] = "dotted.name";`
    std::vector<RegistryEntry> metrics;
    for (size_t i = 0; i < names->raw.size(); ++i) {
      std::string line = TruncateLineComment(names->raw[i]);
      size_t p = FindToken(line, "constexpr");
      if (p == std::string::npos) continue;
      size_t c = FindToken(line, "char", p);
      if (c == std::string::npos) continue;
      size_t s = SkipSpaces(line, c + 4);
      size_t e = s;
      while (e < line.size() && IsWordChar(line[e])) ++e;
      if (e == s) continue;
      RegistryEntry entry;
      entry.ident = line.substr(s, e - s);
      entry.pub = QuotedString(line, e);
      entry.line = i + 1;
      if (!entry.pub.empty()) metrics.push_back(entry);
    }

    std::map<std::string, const RegistryEntry*> by_name;
    for (const RegistryEntry& m : metrics) {
      auto [it, inserted] = by_name.emplace(m.pub, &m);
      if (!inserted)
        findings->push_back(
            {names->display, m.line, "metric-duplicate",
             "metric name \"" + m.pub + "\" already registered as '" +
                 it->second->ident + "' (line " +
                 std::to_string(it->second->line) + "); one name, one constant"});
      if (!UsedInSrc(project, m.ident, kMetricNamesPath))
        findings->push_back(
            {names->display, m.line, "metric-dead",
             "metric constant '" + m.ident + "' (\"" + m.pub +
                 "\") is referenced nowhere in src/; a never-incremented "
                 "metric reads as a forever-zero counter — wire it or "
                 "delete it"});
    }
  }

  // Literal metric names at call sites anywhere in src/.
  for (const SourceFile& f : project.files) {
    if (!StartsWith(f.rel, "src/") || f.rel == kMetricNamesPath) continue;
    for (size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      for (const char* call : kMetricCalls) {
        size_t token_len = std::string(call).size();
        for (size_t p = FindToken(line, call); p != std::string::npos;
             p = FindToken(line, call, p + 1)) {
          size_t paren = SkipSpaces(line, p + token_len);
          if (paren >= line.size() || line[paren] != '(') continue;
          // The stripped view blanks the literal (quote included), so skip
          // spaces on the *raw* line — positions line up — and look for the
          // opening quote there.
          size_t arg = SkipSpaces(f.raw[i], paren + 1);
          if (arg < f.raw[i].size() && f.raw[i][arg] == '"') {
            findings->push_back(
                {f.display, i + 1, "metric-literal",
                 std::string("string-literal metric name passed to ") + call +
                     "(); use a constant from obs/metric_names.h so typo'd "
                     "names are compile errors, not zero counters"});
          }
        }
      }
    }
  }
}

}  // namespace

void RunDriftPass(const Project& project, std::vector<Finding>* findings) {
  CheckKnobs(project, findings);
  CheckMetrics(project, findings);
}

}  // namespace hivelint
