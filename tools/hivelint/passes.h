// hivelint passes. Each pass reads the shared Project (stripped sources
// loaded once) and appends Findings; none of them mutates the sources, so
// passes are independent and their per-pass wall time is honest.
//
//   token     v1's per-line hygiene rules, hand-rolled (no std::regex):
//             raw-sync, wall-clock, stray-output, silent-discard,
//             raw-exec-io, session-construct.
//   layering  builds the #include graph over src/ and enforces the declared
//             module-layer DAG; rules layer-upward, layer-cycle,
//             layer-unknown.
//   lockflow  function-scope, brace-tracking flow analysis: blocking calls
//             (hive::fs I/O, spill stream ops, RunTaskAttempts) while a
//             MutexLock is live in scope, and CondVar waits under a second
//             lock; rules lock-blocking, lock-wait-nested. Suppressed by an
//             adjacent `// lint: allow-blocking(<reason>)`.
//   drift     cross-references the knob and metric registries: config.h's
//             HIVE_CONFIG_FIELDS list vs. Config members vs. src/ uses vs.
//             README docs, and obs/metric_names.h constants vs. uses; rules
//             knob-dead, knob-undocumented, knob-unregistered, metric-dead,
//             metric-duplicate, metric-literal.

#ifndef HIVELINT_PASSES_H_
#define HIVELINT_PASSES_H_

#include <string>
#include <vector>

#include "source.h"

namespace hivelint {

struct Finding {
  std::string file;  // display path
  size_t line = 0;   // 1-based
  std::string rule;
  std::string message;
};

// The unit every pass operates on: a set of loaded files belonging to one
// project root, plus the root's README text (for the drift pass's
// documentation check).
struct Project {
  std::vector<SourceFile> files;
  std::string readme;
  bool has_readme = false;
};

// The declared module-layer DAG over src/ (DESIGN.md "Static analysis"):
//   common(0) -> fs,obs(1) -> storage,metastore(2) -> llap(3) ->
//   optimizer(4) -> exec(5) -> workloads,federation(6) -> sql(7) -> server(8)
// An include may only reach modules at the same or a lower layer; cycles
// between same-layer modules are caught separately. Returns -1 for a module
// not in the DAG.
int LayerOf(const std::string& module);

void RunTokenPass(const Project& project, std::vector<Finding>* findings);
void RunLayeringPass(const Project& project, std::vector<Finding>* findings);
void RunLockflowPass(const Project& project, std::vector<Finding>* findings);
void RunDriftPass(const Project& project, std::vector<Finding>* findings);

}  // namespace hivelint

#endif  // HIVELINT_PASSES_H_
