#include "source.h"

#include <cctype>
#include <sstream>

namespace hivelint {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> StripCommentsAndStrings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  St st = St::kCode;
  std::string raw_delim;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!isalnum(static_cast<unsigned char>(text[i - 1])) &&
                               text[i - 1] != '_'))) {
          size_t paren = text.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + text.substr(i + 2, paren - i - 2) + "\"";
            st = St::kRawString;
            for (size_t j = i; j <= paren; ++j) out += text[j] == '\n' ? '\n' : ' ';
            i = paren;
          } else {
            out += c;
          }
        } else if (c == '"') {
          st = St::kString;
          out += ' ';
        } else if (c == '\'') {
          st = St::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          st = St::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          st = St::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if (c == '"') {
          st = St::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
      case St::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t j = 0; j < raw_delim.size(); ++j) out += ' ';
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return SplitLines(out);
}

SourceFile MakeSourceFile(std::string rel, std::string display,
                          const std::string& text) {
  SourceFile f;
  f.rel = std::move(rel);
  f.display = std::move(display);
  f.raw = SplitLines(text);
  f.code = StripCommentsAndStrings(text);
  f.code.resize(f.raw.size());
  return f;
}

bool IsWordChar(char c) {
  return isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

size_t FindToken(const std::string& line, const std::string& token, size_t from,
                 const char* extra_prev_reject) {
  for (size_t i = line.find(token, from); i != std::string::npos;
       i = line.find(token, i + 1)) {
    if (i > 0) {
      char prev = line[i - 1];
      if (IsWordChar(prev)) continue;
      bool rejected = false;
      for (const char* p = extra_prev_reject; *p; ++p)
        if (prev == *p) rejected = true;
      if (rejected) continue;
    }
    size_t end = i + token.size();
    if (end < line.size() && IsWordChar(line[end])) continue;
    return i;
  }
  return std::string::npos;
}

size_t SkipSpaces(const std::string& line, size_t pos) {
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  return pos;
}

bool IsCall(const std::string& line, size_t pos, size_t token_len) {
  size_t after = SkipSpaces(line, pos + token_len);
  return after < line.size() && line[after] == '(';
}

bool IsMemberCall(const std::string& line, size_t pos) {
  if (pos >= 1 && line[pos - 1] == '.') return true;
  return pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>';
}

std::string IncludeTarget(const std::string& raw_line, bool* angled) {
  size_t i = SkipSpaces(raw_line, 0);
  if (i >= raw_line.size() || raw_line[i] != '#') return "";
  i = SkipSpaces(raw_line, i + 1);
  if (raw_line.compare(i, 7, "include") != 0) return "";
  i = SkipSpaces(raw_line, i + 7);
  if (i >= raw_line.size()) return "";
  char open = raw_line[i];
  char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
  if (!close) return "";
  size_t end = raw_line.find(close, i + 1);
  if (end == std::string::npos) return "";
  if (angled) *angled = open == '<';
  return raw_line.substr(i + 1, end - i - 1);
}

}  // namespace hivelint
