// Pass: token — hivelint v1's textual hygiene rules, reimplemented as
// boundary-checked substring scans over the stripped source cache.
//
//   raw-sync        std::mutex / lock_guard / unique_lock / scoped_lock /
//                   condition_variable in src/ outside common/sync.{h,cc}.
//   wall-clock      rand()/srand()/time()/clock_gettime/gettimeofday,
//                   std::random_device / mt19937, chrono clock reads in src/
//                   outside common/sim_clock.h and common/rng.h.
//   stray-output    std::cout / printf / puts in src/ library code.
//   silent-discard  `(void)call(...)` without an adjacent
//                   `// lint: allow-discard(<reason>)` comment (everywhere).
//   raw-exec-io     <fstream>/<filesystem>/fopen/FILE* in src/exec/.
//   session-construct
//                   direct Session construction in src/ outside the
//                   connection manager.

#include <algorithm>

#include "passes.h"

namespace hivelint {
namespace {

bool PathIsOneOf(const std::string& rel, std::initializer_list<const char*> paths) {
  return std::any_of(paths.begin(), paths.end(),
                     [&](const char* p) { return rel == p; });
}

void Report(const SourceFile& f, size_t line_index, const char* rule,
            const char* message, std::vector<Finding>* findings) {
  findings->push_back({f.display, line_index + 1, rule, message});
}

// --- raw-sync -------------------------------------------------------------

const char* const kRawSyncTokens[] = {
    "std::mutex",          "std::recursive_mutex",
    "std::timed_mutex",    "std::shared_mutex",
    "std::lock_guard",     "std::unique_lock",
    "std::scoped_lock",    "std::shared_lock",
    "std::condition_variable", "std::condition_variable_any",
};
const char* const kRawSyncIncludes[] = {"mutex", "condition_variable",
                                        "shared_mutex"};

void CheckRawSync(const SourceFile& f, std::vector<Finding>* findings) {
  if (!StartsWith(f.rel, "src/")) return;
  if (PathIsOneOf(f.rel, {"src/common/sync.h", "src/common/sync.cc"})) return;
  const char* msg =
      "raw std:: synchronization primitive; use hive::Mutex/MutexLock/CondVar "
      "from common/sync.h (annotated + lock-order checked)";
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    bool hit = false;
    for (const char* tok : kRawSyncTokens)
      if (FindToken(line, tok) != std::string::npos) hit = true;
    bool angled = false;
    std::string inc = IncludeTarget(line, &angled);
    if (angled)
      for (const char* t : kRawSyncIncludes)
        if (inc == t) hit = true;
    if (hit) Report(f, i, "raw-sync", msg, findings);
  }
}

// --- wall-clock -----------------------------------------------------------

void CheckWallClock(const SourceFile& f, std::vector<Finding>* findings) {
  if (!StartsWith(f.rel, "src/")) return;
  if (PathIsOneOf(f.rel, {"src/common/sim_clock.h", "src/common/rng.h"})) return;
  const char* msg =
      "wall-clock or nondeterministic randomness; use SimClock "
      "(common/sim_clock.h) / Rng (common/rng.h) so runs stay deterministic";
  static const char* const kCallTokens[] = {"rand", "srand", "gettimeofday",
                                            "clock_gettime", "std::time"};
  static const char* const kBareTokens[] = {
      "std::random_device", "std::mt19937", "std::mt19937_64",
      "std::chrono::system_clock", "std::chrono::steady_clock",
      "std::chrono::high_resolution_clock"};
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    bool hit = false;
    for (const char* tok : kCallTokens) {
      size_t p = FindToken(line, tok);
      if (p != std::string::npos && IsCall(line, p, std::string(tok).size()))
        hit = true;
    }
    // Plain `time(` — but not `->time(`, `.time(`, `:time(` (members and
    // qualified names of other types).
    for (size_t p = FindToken(line, "time", 0, ":.>"); p != std::string::npos;
         p = FindToken(line, "time", p + 1, ":.>")) {
      if (IsCall(line, p, 4)) hit = true;
    }
    for (const char* tok : kBareTokens)
      if (FindToken(line, tok) != std::string::npos) hit = true;
    if (hit) Report(f, i, "wall-clock", msg, findings);
  }
}

// --- stray-output ---------------------------------------------------------

void CheckStrayOutput(const SourceFile& f, std::vector<Finding>* findings) {
  if (!StartsWith(f.rel, "src/")) return;
  const char* msg =
      "stdout output in library code; return a Status or record a metric "
      "instead";
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    bool hit = FindToken(line, "std::cout") != std::string::npos;
    size_t p = FindToken(line, "printf");  // fprintf/snprintf blocked by boundary
    if (p != std::string::npos && IsCall(line, p, 6)) hit = true;
    p = FindToken(line, "puts");
    if (p != std::string::npos && IsCall(line, p, 4)) hit = true;
    if (hit) Report(f, i, "stray-output", msg, findings);
  }
}

// --- silent-discard -------------------------------------------------------

// `(void)` casting away an expression that contains a call. Plain
// `(void)identifier;` (unused-variable silencing) stays legal.
bool LineHasVoidDiscardOfCall(const std::string& line) {
  for (size_t i = line.find('('); i != std::string::npos;
       i = line.find('(', i + 1)) {
    size_t p = SkipSpaces(line, i + 1);
    if (line.compare(p, 4, "void") != 0) continue;
    p = SkipSpaces(line, p + 4);
    if (p >= line.size() || line[p] != ')') continue;
    // Skip the (qualified, possibly dereferenced) expression prefix; a '('
    // before the statement ends means a call is being discarded.
    p = p + 1;
    static const std::string kExprChars =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
        "_:.*&<>[]- \t";
    while (p < line.size() && kExprChars.find(line[p]) != std::string::npos) ++p;
    if (p < line.size() && line[p] == '(') return true;
  }
  return false;
}

void CheckSilentDiscard(const SourceFile& f, std::vector<Finding>* findings) {
  const char* msg =
      "(void) discard of a fallible call without an adjacent "
      "`// lint: allow-discard(<reason>)` comment";
  for (size_t i = 0; i < f.code.size(); ++i) {
    if (!LineHasVoidDiscardOfCall(f.code[i])) continue;
    bool allowed =
        f.raw[i].find("lint: allow-discard(") != std::string::npos ||
        (i > 0 && f.raw[i - 1].find("lint: allow-discard(") != std::string::npos);
    if (!allowed) Report(f, i, "silent-discard", msg, findings);
  }
}

// --- raw-exec-io ----------------------------------------------------------

void CheckRawExecIo(const SourceFile& f, std::vector<Finding>* findings) {
  if (!StartsWith(f.rel, "src/exec/")) return;
  const char* msg =
      "raw file I/O in the execution engine; spill and exchange bytes must "
      "flow through hive::fs FileSystem (injectable, fault-tested)";
  static const char* const kBareTokens[] = {"std::ifstream", "std::ofstream",
                                            "std::fstream", "std::filesystem"};
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    bool hit = false;
    for (const char* tok : kBareTokens)
      if (FindToken(line, tok) != std::string::npos) hit = true;
    size_t p = FindToken(line, "fopen");
    if (p != std::string::npos && IsCall(line, p, 5)) hit = true;
    p = FindToken(line, "FILE");
    if (p != std::string::npos) {
      size_t after = SkipSpaces(line, p + 4);
      if (after < line.size() && line[after] == '*') hit = true;
    }
    bool angled = false;
    std::string inc = IncludeTarget(line, &angled);
    if (angled && (inc == "fstream" || inc == "filesystem")) hit = true;
    if (hit) Report(f, i, "raw-exec-io", msg, findings);
  }
}

// --- session-construct ----------------------------------------------------

// Matches `Session` as a type-name token, tolerating a `hive::` qualifier.
// Returns the position *after* the token, or npos. `start` receives the
// position of the first character of the (possibly qualified) name.
size_t MatchSessionType(const std::string& line, size_t from, size_t* start) {
  size_t p = FindToken(line, "Session", from, ".~");
  while (p != std::string::npos) {
    size_t s = p;
    if (p >= 6 && line.compare(p - 6, 6, "hive::") == 0) {
      s = p - 6;
      // The qualifier itself must stand alone (`xhive::Session` is not ours).
      if (s > 0 && (IsWordChar(line[s - 1]) || line[s - 1] == ':' ||
                    line[s - 1] == '.' || line[s - 1] == '~'))
        s = std::string::npos;
    } else if (p > 0 && line[p - 1] == ':') {
      s = std::string::npos;  // OtherNs::Session — not ours to police
    }
    if (s != std::string::npos) {
      *start = s;
      return p + 7;
    }
    p = FindToken(line, "Session", p + 1, ".~");
  }
  return std::string::npos;
}

void CheckSessionConstruct(const SourceFile& f, std::vector<Finding>* findings) {
  if (!StartsWith(f.rel, "src/")) return;
  if (PathIsOneOf(f.rel, {"src/server/connection_manager.h",
                          "src/server/connection_manager.cc"}))
    return;
  const char* msg =
      "direct Session construction; sessions are created only by the "
      "connection manager — call HiveServer2::Connect() and hold the "
      "RAII Connection";
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    bool hit = false;
    // new Session / new hive::Session
    for (size_t p = FindToken(line, "new"); p != std::string::npos;
         p = FindToken(line, "new", p + 1)) {
      size_t s = SkipSpaces(line, p + 3);
      size_t start = 0;
      if (s < line.size() && MatchSessionType(line, s, &start) != std::string::npos &&
          start == s)
        hit = true;
    }
    // make_unique<Session> / make_shared<hive::Session>
    for (const char* maker : {"make_unique", "make_shared"}) {
      for (size_t p = FindToken(line, maker); p != std::string::npos;
           p = FindToken(line, maker, p + 1)) {
        size_t s = SkipSpaces(line, p + std::string(maker).size());
        if (s >= line.size() || line[s] != '<') continue;
        s = SkipSpaces(line, s + 1);
        size_t start = 0;
        size_t end = MatchSessionType(line, s, &start);
        if (end == std::string::npos || start != s) continue;
        end = SkipSpaces(line, end);
        if (end < line.size() && line[end] == '>') hit = true;
      }
    }
    // By-value declaration: `Session name;` / `Session name = ...` /
    // `Session name(...)` / `Session name{...}`. Pointers and references
    // (`Session*`, `Session&`) stay legal — they don't create sessions.
    for (size_t start = 0, end = MatchSessionType(line, 0, &start);
         end != std::string::npos;
         end = MatchSessionType(line, end, &start)) {
      size_t p = SkipSpaces(line, end);
      if (p >= line.size() || !(isalpha(static_cast<unsigned char>(line[p])) ||
                                line[p] == '_'))
        continue;
      while (p < line.size() && IsWordChar(line[p])) ++p;
      p = SkipSpaces(line, p);
      if (p < line.size() && (line[p] == ';' || line[p] == '{' ||
                              line[p] == '=' || line[p] == '('))
        hit = true;
    }
    if (hit) Report(f, i, "session-construct", msg, findings);
  }
}

}  // namespace

void RunTokenPass(const Project& project, std::vector<Finding>* findings) {
  for (const SourceFile& f : project.files) {
    CheckRawSync(f, findings);
    CheckWallClock(f, findings);
    CheckStrayOutput(f, findings);
    CheckSilentDiscard(f, findings);
    CheckRawExecIo(f, findings);
    CheckSessionConstruct(f, findings);
  }
}

}  // namespace hivelint
