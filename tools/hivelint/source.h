// hivelint source layer: file loading, comment/string stripping, and the
// hand-rolled token scanning primitives every pass builds on.
//
// hivelint v1 matched rules with std::regex; profiling showed regex
// compilation + per-line searching dominated the run. v2 loads and strips
// each file exactly once into a SourceFile (raw lines for annotation/marker
// checks, stripped lines for code scans) shared by all passes, and matches
// tokens with boundary-checked substring scans — no regex anywhere.

#ifndef HIVELINT_SOURCE_H_
#define HIVELINT_SOURCE_H_

#include <string>
#include <vector>

namespace hivelint {

// One loaded source file. `raw` is the file verbatim, split into lines;
// `code` is the same line structure with comments and string/char-literal
// contents blanked to spaces, so token scans never fire on prose. Both are
// computed once at load time and shared (read-only) by every pass.
struct SourceFile {
  std::string rel;      // '/'-separated path relative to the project root;
                        // the scoping rules (src/-only, exemptions) key on it
  std::string display;  // the path diagnostics print
  std::vector<std::string> raw;
  std::vector<std::string> code;
};

std::vector<std::string> SplitLines(const std::string& text);

// Replaces comments and string/char-literal contents with spaces, preserving
// line structure. Handles //, /*...*/, "...", '...' and R"delim(...)delim".
std::vector<std::string> StripCommentsAndStrings(const std::string& text);

// Builds a SourceFile from raw text (strips once, caches both views).
SourceFile MakeSourceFile(std::string rel, std::string display,
                          const std::string& text);

bool IsWordChar(char c);
bool StartsWith(const std::string& s, const std::string& prefix);

// Index of the first character of `token` at an identifier boundary in
// `line` at or after `from`, or npos. Boundary: the character before the
// match (if any) is neither a word character nor listed in
// `extra_prev_reject`, and the character after is not a word character.
size_t FindToken(const std::string& line, const std::string& token,
                 size_t from = 0, const char* extra_prev_reject = "");

// First non-space/tab position at or after `pos` (may be line.size()).
size_t SkipSpaces(const std::string& line, size_t pos);

// True when the token at [pos, pos+len) is invoked as a call: the next
// non-space character is '('.
bool IsCall(const std::string& line, size_t pos, size_t token_len);

// True when the token at `pos` is a member access: preceded by '.' or '->'.
bool IsMemberCall(const std::string& line, size_t pos);

// If the (stripped) line is `#include <target>` or `#include "target"`,
// returns target and sets *angled accordingly; else returns "". For quoted
// includes the target must be read from the *raw* line (stripping blanks
// string contents), so pass the raw line here.
std::string IncludeTarget(const std::string& raw_line, bool* angled);

}  // namespace hivelint

#endif  // HIVELINT_SOURCE_H_
