// Pass: lockflow — function-scope, brace-tracking flow analysis of what
// happens while a hive::MutexLock is live. The runtime lock-order detector
// catches A-then-B vs B-then-A inversions, and Clang's thread-safety
// annotations catch unguarded field access — neither sees the *stall*
// class: holding a lock across a blocking operation, so every other thread
// needing that lock waits out a disk read. Rules:
//
//   lock-blocking     a blocking call — hive::fs I/O (ReadFile, WriteFile,
//                     ReadRange, Stat, ListDir, MakeDirs, DeleteFile,
//                     DeleteRecursive, Rename, Exists as member calls),
//                     spill stream ops (AppendRecord, AppendRow,
//                     AppendBatchRow, ReadChunk), or RunTaskAttempts —
//                     while at least one MutexLock is live in scope.
//   lock-wait-nested  CondVar::Wait/WaitFor with two or more MutexLocks
//                     live: Wait releases only the lock it is handed, so
//                     the outer lock is held for the whole sleep.
//
// A reviewed site is suppressed with `// lint: allow-blocking(<reason>)` on
// the offending line or the line above — the reason is the point, same as
// allow-discard.
//
// Scope model: a `MutexLock name(...)` declaration is live until the brace
// depth drops below its declaration depth or `name.Unlock()` runs; a
// `MutexLock&` function parameter is live for the function body. The
// analysis is textual and per-file: it does not follow calls, so a helper
// that takes no lock but is only ever called under one needs its blocking
// call annotated at the call site inside the locked region (which is where
// the reader needs the warning anyway).

#include "passes.h"

namespace hivelint {
namespace {

const char* const kBlockingMemberCalls[] = {
    // hive::fs FileSystem surface
    "ReadFile", "WriteFile", "ReadRange", "Stat", "ListDir", "MakeDirs",
    "DeleteFile", "DeleteRecursive", "Rename", "Exists",
    // spill stream ops (exec/spill.h)
    "AppendRecord", "AppendRow", "AppendBatchRow", "ReadChunk"};

const char* const kWaitCalls[] = {"Wait", "WaitFor"};

struct LiveLock {
  std::string name;
  int depth = 0;  // dies when brace depth drops below this
};

// Finds a `MutexLock` declaration on the (stripped) line at/after `from`.
// Returns npos or the token position; `*name` receives the declared
// variable name ("" for a reference parameter) and `*is_ref` whether this
// is a `MutexLock&` binding.
size_t FindLockDecl(const std::string& line, size_t from, std::string* name,
                    bool* is_ref) {
  for (size_t p = FindToken(line, "MutexLock", from); p != std::string::npos;
       p = FindToken(line, "MutexLock", p + 1)) {
    // Qualified hive::MutexLock is the same type; OtherNs::MutexLock is not.
    if (p >= 2 && line[p - 1] == ':' &&
        !(p >= 6 && line.compare(p - 6, 6, "hive::") == 0))
      continue;
    size_t q = SkipSpaces(line, p + 9);
    if (q < line.size() && line[q] == '&') {
      // `MutexLock& lock` — a caller's live lock handed in by reference.
      *name = "";
      size_t r = SkipSpaces(line, q + 1);
      size_t start = r;
      while (r < line.size() && IsWordChar(line[r])) ++r;
      if (r > start) *name = line.substr(start, r - start);
      *is_ref = true;
      return p;
    }
    if (q >= line.size() ||
        !(isalpha(static_cast<unsigned char>(line[q])) || line[q] == '_'))
      continue;  // MutexLock* / MutexLock( / MutexLock> — not a declaration
    size_t start = q;
    while (q < line.size() && IsWordChar(line[q])) ++q;
    size_t after = SkipSpaces(line, q);
    if (after < line.size() && (line[after] == '(' || line[after] == '{')) {
      *name = line.substr(start, q - start);
      *is_ref = false;
      return p;
    }
  }
  return std::string::npos;
}

}  // namespace

void RunLockflowPass(const Project& project, std::vector<Finding>* findings) {
  for (const SourceFile& f : project.files) {
    if (!StartsWith(f.rel, "src/")) continue;
    // The sync layer itself implements MutexLock/CondVar on raw primitives.
    if (f.rel == "src/common/sync.h" || f.rel == "src/common/sync.cc") continue;

    std::vector<LiveLock> live;
    int depth = 0;
    for (size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];

      // Per-character depth prefix so a lock declared inside `if (x) { ... }`
      // on one line gets the depth at its position, not the line edge.
      auto depth_at = [&](size_t pos) {
        int d = depth;
        for (size_t j = 0; j < pos && j < line.size(); ++j) {
          if (line[j] == '{') ++d;
          if (line[j] == '}') --d;
        }
        return d;
      };

      // New locks. A reference parameter guards the *body* that follows, so
      // it is registered one level deeper than the signature and dies when
      // the body's closing brace returns to signature depth.
      std::string name;
      bool is_ref = false;
      for (size_t p = FindLockDecl(line, 0, &name, &is_ref);
           p != std::string::npos;
           p = FindLockDecl(line, p + 9, &name, &is_ref)) {
        live.push_back({name, depth_at(p) + (is_ref ? 1 : 0)});
      }

      bool annotated =
          f.raw[i].find("lint: allow-blocking(") != std::string::npos ||
          (i > 0 && f.raw[i - 1].find("lint: allow-blocking(") != std::string::npos);

      // Early release: `name.Unlock()` kills that lock for the rest of its
      // scope (a textual approximation: one Unlock per name per scope).
      for (auto it = live.begin(); it != live.end();) {
        size_t p = it->name.empty() ? std::string::npos
                                    : FindToken(line, it->name + ".Unlock");
        if (p != std::string::npos) {
          it = live.erase(it);
        } else {
          ++it;
        }
      }

      if (!live.empty()) {
        for (const char* tok : kBlockingMemberCalls) {
          size_t p = FindToken(line, tok);
          if (p == std::string::npos) continue;
          if (!IsMemberCall(line, p) || !IsCall(line, p, std::string(tok).size()))
            continue;
          if (annotated) continue;
          findings->push_back(
              {f.display, i + 1, "lock-blocking",
               std::string("blocking call ") + tok + "() while MutexLock '" +
                   live.back().name +
                   "' is live in scope; release the lock first, move the I/O "
                   "out of the critical section, or annotate a reviewed site "
                   "with `// lint: allow-blocking(<reason>)`"});
        }
        size_t p = FindToken(line, "RunTaskAttempts");
        if (p != std::string::npos && IsCall(line, p, 15) && !annotated) {
          findings->push_back(
              {f.display, i + 1, "lock-blocking",
               "RunTaskAttempts (retry loop with virtual-clock backoff) while "
               "MutexLock '" +
                   live.back().name +
                   "' is live in scope; retries can sleep for many backoff "
                   "rounds with the lock held"});
        }
        if (live.size() >= 2) {
          for (const char* tok : kWaitCalls) {
            size_t w = FindToken(line, tok);
            if (w == std::string::npos) continue;
            if (!IsMemberCall(line, w) || !IsCall(line, w, std::string(tok).size()))
              continue;
            if (annotated) continue;
            findings->push_back(
                {f.display, i + 1, "lock-wait-nested",
                 std::string("CondVar::") + tok + " with " +
                     std::to_string(live.size()) +
                     " MutexLocks live; Wait releases only the lock it is "
                     "handed — the outer lock '" +
                     live.front().name + "' stays held for the whole sleep"});
          }
        }
      }

      // Close scopes.
      for (char c : line) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
      for (auto it = live.begin(); it != live.end();) {
        if (depth < it->depth) {
          it = live.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
}

}  // namespace hivelint
