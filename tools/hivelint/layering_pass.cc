// Pass: layering — builds the project-wide `#include` graph over src/ and
// enforces the declared module-layer DAG. Rules:
//
//   layer-upward   a quoted include whose target module sits on a *higher*
//                  layer than the including file's module (lower layers
//                  must not know about higher ones).
//   layer-cycle    a cycle between modules of the same layer (the only kind
//                  the layer check can't catch); reported once per strongly
//                  connected component with an example include chain.
//   layer-unknown  an include of a module directory under src/ that the
//                  declared DAG doesn't name — new modules must be placed
//                  in the layering before code can depend on them.
//
// Only files under src/ participate; tools, tests and benches may include
// anything. Includes inside one module are always legal.

#include <map>
#include <set>

#include "passes.h"

namespace hivelint {

int LayerOf(const std::string& module) {
  static const std::map<std::string, int> kLayers = {
      {"common", 0},    {"fs", 1},         {"obs", 1},
      {"storage", 2},   {"metastore", 2},  {"llap", 3},
      {"optimizer", 4}, {"exec", 5},       {"workloads", 6},
      {"federation", 6}, {"sql", 7},       {"server", 8},
  };
  auto it = kLayers.find(module);
  return it == kLayers.end() ? -1 : it->second;
}

namespace {

// Module of a path like "src/exec/operator.h" -> "exec"; "" if not a
// two-level src/ path.
std::string ModuleOf(const std::string& rel) {
  if (!StartsWith(rel, "src/")) return "";
  size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel.substr(4, slash - 4);
}

struct Edge {
  std::string file;   // display path of an example include site
  size_t line = 0;    // 1-based
  std::string target; // include target text
};

}  // namespace

void RunLayeringPass(const Project& project, std::vector<Finding>* findings) {
  // Module directories that exist in this project (so an include of
  // "gtest/gtest.h" is nobody's business, but "util/helper.h" with a real
  // src/util/ directory must be declared in the DAG).
  std::set<std::string> module_dirs;
  for (const SourceFile& f : project.files) {
    std::string m = ModuleOf(f.rel);
    if (!m.empty()) module_dirs.insert(m);
  }

  // Cross-module edges, first example kept per (from, to) pair.
  std::map<std::pair<std::string, std::string>, Edge> edges;

  for (const SourceFile& f : project.files) {
    std::string from = ModuleOf(f.rel);
    if (from.empty()) continue;
    for (size_t i = 0; i < f.raw.size(); ++i) {
      bool angled = true;
      // Quoted include targets live inside string literals, which the
      // stripped view blanks — parse the raw line, but only where the
      // stripped view still shows a '#' directive (a commented-out include
      // must not count).
      if (SkipSpaces(f.code[i], 0) >= f.code[i].size() ||
          f.code[i][SkipSpaces(f.code[i], 0)] != '#')
        continue;
      std::string target = IncludeTarget(f.raw[i], &angled);
      if (target.empty() || angled) continue;
      std::string clean = StartsWith(target, "src/") ? target.substr(4) : target;
      size_t slash = clean.find('/');
      if (slash == std::string::npos) continue;  // same-directory include
      std::string to = clean.substr(0, slash);
      if (to == from) continue;
      if (!module_dirs.count(to) && LayerOf(to) < 0)
        continue;  // not a project module (external quoted include)

      int from_layer = LayerOf(from);
      int to_layer = LayerOf(to);
      if (from_layer < 0) {
        findings->push_back(
            {f.display, i + 1, "layer-unknown",
             "file lives in module '" + from +
                 "', which the declared layer DAG does not name; add the "
                 "module to the layering in tools/hivelint (LayerOf) and "
                 "DESIGN.md before depending on it"});
        continue;
      }
      if (to_layer < 0) {
        findings->push_back(
            {f.display, i + 1, "layer-unknown",
             "include of \"" + target + "\" reaches module '" + to +
                 "', which the declared layer DAG does not name; add the "
                 "module to the layering in tools/hivelint (LayerOf) and "
                 "DESIGN.md before depending on it"});
        continue;
      }
      if (to_layer > from_layer) {
        findings->push_back(
            {f.display, i + 1, "layer-upward",
             "include of \"" + target + "\" from module '" + from + "' (layer " +
                 std::to_string(from_layer) + ") reaches up to '" + to +
                 "' (layer " + std::to_string(to_layer) +
                 "); move the shared declaration down (usually into common/) "
                 "or invert the dependency"});
      }
      edges.emplace(std::make_pair(from, to), Edge{f.display, i + 1, target});
    }
  }

  // Cycle detection over the module graph. With upward edges already
  // reported, a cycle can only involve same-layer modules, but the check is
  // general: find strongly connected components and report each once, with
  // a deterministic example chain (BFS shortest cycle through the
  // lexicographically smallest member).
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [pair, edge] : edges) adj[pair.first].insert(pair.second);

  // Iterative SCC by repeated reachability (module count is tiny).
  std::set<std::string> nodes;
  for (const auto& [pair, edge] : edges) {
    nodes.insert(pair.first);
    nodes.insert(pair.second);
  }
  auto reachable = [&](const std::string& from) {
    std::set<std::string> seen;
    std::vector<std::string> stack = {from};
    while (!stack.empty()) {
      std::string n = stack.back();
      stack.pop_back();
      for (const std::string& next : adj[n])
        if (seen.insert(next).second) stack.push_back(next);
    }
    return seen;
  };
  std::set<std::string> reported;
  for (const std::string& start : nodes) {  // std::set: smallest member first
    if (reported.count(start)) continue;
    std::set<std::string> fwd = reachable(start);
    if (!fwd.count(start)) continue;  // not on any cycle through itself
    // SCC of `start`: nodes reachable from start that can reach start.
    std::set<std::string> scc = {start};
    for (const std::string& n : fwd)
      if (reachable(n).count(start)) scc.insert(n);
    for (const std::string& n : scc) reported.insert(n);

    // Shortest cycle start -> ... -> start inside the SCC (BFS, neighbors
    // visited in sorted order, so the chain is deterministic).
    std::map<std::string, std::string> parent;
    std::vector<std::string> queue = {start};
    std::string closer;
    for (size_t qi = 0; qi < queue.size() && closer.empty(); ++qi) {
      for (const std::string& next : adj[queue[qi]]) {
        if (!scc.count(next)) continue;
        if (next == start) {
          closer = queue[qi];
          break;
        }
        if (!parent.count(next)) {
          parent[next] = queue[qi];
          queue.push_back(next);
        }
      }
    }
    std::vector<std::string> chain = {start};
    if (!closer.empty() && closer != start) {
      std::vector<std::string> back;
      for (std::string n = closer; n != start; n = parent[n]) back.push_back(n);
      chain.insert(chain.end(), back.rbegin(), back.rend());
    }
    chain.push_back(start);

    std::string desc;
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      const Edge& e = edges.at({chain[i], chain[i + 1]});
      desc += chain[i] + " -> " + chain[i + 1] + " (" + e.file + ":" +
              std::to_string(e.line) + ")";
      if (i + 2 < chain.size()) desc += ", ";
    }
    const Edge& first = edges.at({chain[0], chain[1]});
    findings->push_back(
        {first.file, first.line, "layer-cycle",
         "module dependency cycle: " + desc +
             "; break it by moving the shared declarations into a lower "
             "layer"});
  }
}

}  // namespace hivelint
