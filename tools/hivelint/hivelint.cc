// hivelint — textual hygiene checks the compiler cannot express.
//
// The build already enforces the strong properties (thread-safety
// annotations under Clang, -Werror=unused-result everywhere); hivelint
// closes the textual gaps that survive compilation:
//
//   raw-sync        std::mutex / lock_guard / unique_lock / scoped_lock /
//                   condition_variable in src/ outside common/sync.{h,cc}.
//                   Raw primitives bypass both the Clang annotations and the
//                   runtime lock-order detector.
//   wall-clock      rand()/srand()/time()/clock_gettime/gettimeofday,
//                   std::random_device / mt19937, and chrono clock reads in
//                   src/ outside common/sim_clock.h and common/rng.h. All
//                   time flows through SimClock and all randomness through
//                   Rng so runs are deterministic and virtual-clock latency
//                   accounting stays honest.
//   stray-output    std::cout / printf / puts in src/ library code. The
//                   engine reports through Status and the metrics registry,
//                   never by writing to stdout under the server's feet.
//   silent-discard  `(void)call(...)` silencing [[nodiscard]] without an
//                   adjacent `// lint: allow-discard(<reason>)` comment. The
//                   cast compiles; the comment is what makes the discard a
//                   reviewed decision instead of a reflex.
//   raw-exec-io     <fstream>/<filesystem>/fopen/FILE* in src/exec/. Spill
//                   and exchange I/O must flow through the injectable
//                   hive::fs FileSystem so fault injection (transient
//                   errors, corruption, torn renames) exercises every
//                   execution-time byte that touches a disk.
//   session-construct
//                   direct Session construction (new/make_unique/by-value)
//                   in src/ outside the connection manager. Sessions exist
//                   only behind RAII Connection handles so close-time
//                   teardown (cancel, drain, drop temps, sweep spill) can
//                   never be skipped.
//
// Usage:
//   hivelint [--root <dir>] <file-or-dir>...   lint (dirs walk *.h/*.cc/*.cpp)
//   hivelint --self-test <fixtures-dir>        verify against // expect[rule]
//
// Exit codes: 0 clean, 1 findings (or self-test mismatch), 2 usage/IO error.
//
// Scanning is line-based over comment- and string-stripped text, so a rule
// token inside a comment or a log message never fires. The allow-discard
// check is the one rule that reads the *raw* text (the comment is the
// point); a marker counts on the offending line or the line above it.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

struct Rule {
  std::string name;
  std::regex pattern;
  std::string message;
  // Path prefixes (relative, '/'-separated) the rule is confined to.
  std::vector<std::string> only_under;
  // Relative paths exempt from the rule.
  std::vector<std::string> exempt;
};

const std::vector<Rule>& Rules() {
  static const std::vector<Rule> rules = {
      {"raw-sync",
       std::regex(R"(std::(recursive_|timed_|shared_)?mutex\b|std::(lock_guard|unique_lock|scoped_lock|shared_lock)\b|std::condition_variable(_any)?\b|#\s*include\s*<(mutex|condition_variable|shared_mutex)>)"),
       "raw std:: synchronization primitive; use hive::Mutex/MutexLock/CondVar "
       "from common/sync.h (annotated + lock-order checked)",
       {"src/"},
       {"src/common/sync.h", "src/common/sync.cc"}},
      {"wall-clock",
       std::regex(R"(\b(rand|srand|gettimeofday|clock_gettime)\s*\(|(^|[^\w:.>])time\s*\(|std::time\s*\(|std::random_device\b|std::mt19937(_64)?\b|std::chrono::(system_clock|steady_clock|high_resolution_clock)\b)"),
       "wall-clock or nondeterministic randomness; use SimClock "
       "(common/sim_clock.h) / Rng (common/rng.h) so runs stay deterministic",
       {"src/"},
       {"src/common/sim_clock.h", "src/common/rng.h"}},
      {"stray-output",
       std::regex(R"(std::cout\b|(^|[^\w:])std::printf\s*\(|\bprintf\s*\(|\bputs\s*\()"),
       "stdout output in library code; return a Status or record a metric "
       "instead",
       {"src/"},
       {}},
      {"silent-discard",
       // `(void)` casting away an expression that contains a call. Plain
       // `(void)identifier;` (unused-variable silencing) is fine.
       std::regex(R"(\(\s*void\s*\)\s*[\w:.*&<>\[\]\- ]*\()"),
       "(void) discard of a fallible call without an adjacent "
       "`// lint: allow-discard(<reason>)` comment",
       {},  // applies everywhere hivelint looks, tests included
       {}},
      {"raw-exec-io",
       std::regex(R"(#\s*include\s*<(fstream|filesystem)>|std::(i|o)?fstream\b|std::filesystem\b|\bfopen\s*\(|\bFILE\s*\*)"),
       "raw file I/O in the execution engine; spill and exchange bytes must "
       "flow through hive::fs FileSystem (injectable, fault-tested)",
       {"src/exec/"},
       {}},
      {"session-construct",
       // new Session / make_unique<Session> / make_shared<Session> / a
       // by-value `Session name...` declaration. Pointers and references
       // (`Session*`, `Session&`) stay legal — they don't create sessions.
       std::regex(R"(\bnew\s+(hive::)?Session\b|\bmake_(unique|shared)\s*<\s*(hive::)?Session\s*>|(^|[^\w:.~])(hive::)?Session\s+[A-Za-z_]\w*\s*[;{=(])"),
       "direct Session construction; sessions are created only by the "
       "connection manager — call HiveServer2::Connect() and hold the "
       "RAII Connection",
       {"src/"},
       {"src/server/connection_manager.h", "src/server/connection_manager.cc"}},
  };
  return rules;
}

// Replaces comments and string/char-literal contents with spaces, preserving
// line structure, so token scans don't fire on prose or log text. Handles
// //, /*...*/, "...", '...' and (crudely) R"(...)"; good enough for a linter.
std::vector<std::string> StripCommentsAndStrings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  St st = St::kCode;
  std::string raw_delim;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!isalnum(static_cast<unsigned char>(text[i - 1])) &&
                               text[i - 1] != '_'))) {
          size_t paren = text.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + text.substr(i + 2, paren - i - 2) + "\"";
            st = St::kRawString;
            for (size_t j = i; j <= paren; ++j) out += text[j] == '\n' ? '\n' : ' ';
            i = paren;
          } else {
            out += c;
          }
        } else if (c == '"') {
          st = St::kString;
          out += ' ';
        } else if (c == '\'') {
          st = St::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          st = St::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          st = St::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if (c == '"') {
          st = St::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
      case St::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t j = 0; j < raw_delim.size(); ++j) out += ' ';
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  std::vector<std::string> lines;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool RuleApplies(const Rule& rule, const std::string& rel_path) {
  for (const std::string& ex : rule.exempt)
    if (rel_path == ex) return false;
  if (rule.only_under.empty()) return true;
  return std::any_of(rule.only_under.begin(), rule.only_under.end(),
                     [&](const std::string& p) { return StartsWith(rel_path, p); });
}

// Lints one file's content as if it lived at `rel_path` (relative to the
// repo root, '/'-separated). Returns findings; display_path is what the
// diagnostics name.
std::vector<Finding> LintContent(const std::string& display_path,
                                 const std::string& rel_path,
                                 const std::string& text) {
  std::vector<Finding> findings;
  std::vector<std::string> raw = SplitLines(text);
  std::vector<std::string> code = StripCommentsAndStrings(text);
  code.resize(raw.size());
  for (const Rule& rule : Rules()) {
    if (!RuleApplies(rule, rel_path)) continue;
    for (size_t i = 0; i < code.size(); ++i) {
      if (!std::regex_search(code[i], rule.pattern)) continue;
      if (rule.name == "silent-discard") {
        bool allowed =
            raw[i].find("lint: allow-discard(") != std::string::npos ||
            (i > 0 && raw[i - 1].find("lint: allow-discard(") != std::string::npos);
        if (allowed) continue;
      }
      findings.push_back({display_path, i + 1, rule.name, rule.message});
    }
  }
  return findings;
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool IsSourceFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

// Path of `p` relative to `root`, '/'-separated; empty if p is outside root.
std::string RelativeTo(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(fs::absolute(p), fs::absolute(root), ec);
  if (ec) return {};
  std::string s = rel.generic_string();
  if (StartsWith(s, "..")) return {};
  return s;
}

int RunLint(const fs::path& root, const std::vector<std::string>& inputs) {
  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    fs::path p = fs::path(input).is_absolute() ? fs::path(input) : root / input;
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p))
        if (entry.is_regular_file() && IsSourceFile(entry.path()))
          files.push_back(entry.path());
    } else if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "hivelint: no such file or directory: %s\n",
                   input.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  size_t total = 0;
  for (const fs::path& file : files) {
    std::string text;
    if (!ReadFile(file, &text)) {
      std::fprintf(stderr, "hivelint: cannot read %s\n", file.string().c_str());
      return 2;
    }
    std::string rel = RelativeTo(root, file);
    if (rel.empty()) rel = file.generic_string();
    for (const Finding& f : LintContent(rel, rel, text)) {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                   f.rule.c_str(), f.message.c_str());
      ++total;
    }
  }
  if (total) {
    std::fprintf(stderr, "hivelint: %zu finding(s) in %zu file(s) scanned\n",
                 total, files.size());
    return 1;
  }
  std::fprintf(stderr, "hivelint: clean (%zu files)\n", files.size());
  return 0;
}

// --self-test: each fixture file carries `// expect[rule]` markers on the
// lines that must fire. A fixture is linted as if it lived under src/
// (so the src/-scoped rules apply); a leading
// `// hivelint-fixture-path: <rel-path>` directive overrides that, which is
// how the sync.h/sim_clock.h exemptions get coverage.
int RunSelfTest(const fs::path& fixtures_dir) {
  if (!fs::is_directory(fixtures_dir)) {
    std::fprintf(stderr, "hivelint: fixtures dir not found: %s\n",
                 fixtures_dir.string().c_str());
    return 2;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(fixtures_dir))
    if (entry.is_regular_file() && IsSourceFile(entry.path()))
      files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "hivelint: no fixtures in %s\n",
                 fixtures_dir.string().c_str());
    return 2;
  }

  static const std::regex expect_re(R"(//\s*expect\[([a-z-]+)\])");
  size_t failures = 0;
  for (const fs::path& file : files) {
    std::string text;
    if (!ReadFile(file, &text)) {
      std::fprintf(stderr, "hivelint: cannot read %s\n", file.string().c_str());
      return 2;
    }
    std::vector<std::string> raw = SplitLines(text);
    std::string rel = "src/fixture/" + file.filename().string();
    // (line, rule) pairs the fixture declares.
    std::set<std::pair<size_t, std::string>> expected;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (i == 0 && StartsWith(raw[i], "// hivelint-fixture-path:")) {
        rel = raw[i].substr(raw[i].find(':') + 1);
        rel.erase(0, rel.find_first_not_of(" \t"));
        continue;
      }
      auto begin = std::sregex_iterator(raw[i].begin(), raw[i].end(), expect_re);
      for (auto it = begin; it != std::sregex_iterator(); ++it)
        expected.insert({i + 1, (*it)[1].str()});
    }
    std::set<std::pair<size_t, std::string>> actual;
    for (const Finding& f : LintContent(file.filename().string(), rel, text))
      actual.insert({f.line, f.rule});

    for (const auto& [line, rule] : expected)
      if (!actual.count({line, rule})) {
        std::fprintf(stderr, "self-test FAIL %s:%zu: expected [%s], not reported\n",
                     file.filename().string().c_str(), line, rule.c_str());
        ++failures;
      }
    for (const auto& [line, rule] : actual)
      if (!expected.count({line, rule})) {
        std::fprintf(stderr, "self-test FAIL %s:%zu: unexpected [%s]\n",
                     file.filename().string().c_str(), line, rule.c_str());
        ++failures;
      }
  }
  if (failures) {
    std::fprintf(stderr, "hivelint --self-test: %zu mismatch(es)\n", failures);
    return 1;
  }
  std::fprintf(stderr, "hivelint --self-test: OK (%zu fixtures)\n", files.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--self-test") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hivelint: --self-test needs a fixtures dir\n");
        return 2;
      }
      return RunSelfTest(argv[i + 1]);
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hivelint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: hivelint [--root <dir>] <file-or-dir>...\n"
                   "       hivelint --self-test <fixtures-dir>\n");
      return 0;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "hivelint: nothing to lint (see --help)\n");
    return 2;
  }
  return RunLint(root, inputs);
}
