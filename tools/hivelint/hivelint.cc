// hivelint v2 — project-wide static analysis for the Hive reproduction.
//
// Usage:
//   hivelint [--root <dir>] [--pass token|layering|lockflow|drift|all] <path>...
//   hivelint --self-test <fixtures-dir>
//
// Paths are files or directories, resolved relative to --root (default: the
// current directory); `rel` paths used by rule scoping are root-relative.
// Every file is loaded and comment/string-stripped exactly once into a
// shared Project, then each selected pass scans that cache — adding a pass
// costs its scan, not another disk walk. The rule catalog lives in passes.h
// and DESIGN.md ("Static analysis").
//
// Self-test: every loose fixture file under <fixtures-dir> is linted as a
// one-file project (token + lockflow passes — the per-file rules), and every
// `*_tree` subdirectory is linted as a standalone project root with all four
// passes (the project-wide rules need a config.h / README / module layout to
// cross-reference). A fixture declares its violations with `// expect[rule]`
// markers; each must fire exactly once on its line — a missed marker or an
// extra finding fails the self-test, so both false negatives and false
// positives break the build. A first-line `// hivelint-fixture-path: <path>`
// directive lets a loose fixture impersonate a real path (exemptions and
// src/-scoping key on it).
//
// Exit codes: 0 clean, 1 findings (or self-test mismatch), 2 usage/IO error.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "passes.h"

namespace hivelint {
namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".hpp" || ext == ".cpp";
}

std::string ReadFileText(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

std::string Slashes(std::string s) {
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

// Loads `paths` (files or directories, relative to `root`) into a Project;
// rel paths are root-relative. Directory walks are sorted so finding order
// is deterministic across filesystems.
bool LoadProject(const fs::path& root, const std::vector<std::string>& paths,
                 Project* project) {
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    fs::path full = root / p;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(full)) {
        if (entry.is_regular_file() && HasSourceExtension(entry.path()))
          files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(full, ec)) {
      files.push_back(full);
    } else {
      std::fprintf(stderr, "hivelint: no such input: %s\n", full.c_str());
      return false;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const fs::path& f : files) {
    bool ok = false;
    std::string text = ReadFileText(f, &ok);
    if (!ok) {
      std::fprintf(stderr, "hivelint: cannot read %s\n", f.c_str());
      return false;
    }
    std::string rel = Slashes(fs::relative(f, root).string());
    project->files.push_back(MakeSourceFile(rel, rel, text));
  }

  fs::path readme = root / "README.md";
  std::error_code ec;
  if (fs::is_regular_file(readme, ec)) {
    bool ok = false;
    project->readme = ReadFileText(readme, &ok);
    project->has_readme = ok;
  }
  return true;
}

struct PassEntry {
  const char* name;
  void (*run)(const Project&, std::vector<Finding>*);
};

const PassEntry kPasses[] = {
    {"token", RunTokenPass},
    {"layering", RunLayeringPass},
    {"lockflow", RunLockflowPass},
    {"drift", RunDriftPass},
};

// Accumulated per-pass wall time, reported on success so the <1s budget over
// the full tree is measured, not assumed.
std::map<std::string, double> g_pass_ms;

// `which` is "all" or a '+'-separated subset of pass names.
bool PassSelected(const std::string& which, const std::string& name) {
  if (which == "all") return true;
  for (size_t p = 0; p < which.size();) {
    size_t e = which.find('+', p);
    if (e == std::string::npos) e = which.size();
    if (which.compare(p, e - p, name) == 0) return true;
    p = e + 1;
  }
  return false;
}

void RunPasses(const Project& project, const std::string& which,
               std::vector<Finding>* findings) {
  for (const PassEntry& pass : kPasses) {
    if (!PassSelected(which, pass.name)) continue;
    auto t0 = std::chrono::steady_clock::now();
    pass.run(project, findings);
    auto t1 = std::chrono::steady_clock::now();
    g_pass_ms[pass.name] +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
  }
}

std::string TimingSummary(const std::string& which) {
  std::string out;
  char buf[64];
  for (const PassEntry& pass : kPasses) {
    if (!PassSelected(which, pass.name)) continue;
    std::snprintf(buf, sizeof buf, "%s%s %.1fms", out.empty() ? "" : ", ",
                  pass.name, g_pass_ms[pass.name]);
    out += buf;
  }
  return out;
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

int RunLint(const fs::path& root, const std::vector<std::string>& paths,
            const std::string& which) {
  Project project;
  if (!LoadProject(root, paths, &project)) return 2;
  std::vector<Finding> findings;
  RunPasses(project, which, &findings);
  SortFindings(&findings);
  for (const Finding& f : findings)
    std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  if (!findings.empty()) {
    std::printf("hivelint: %zu finding(s) in %zu file(s)\n", findings.size(),
                project.files.size());
    return 1;
  }
  std::printf("hivelint: clean (%zu files; %s)\n", project.files.size(),
              TimingSummary(which).c_str());
  return 0;
}

// --- self-test -------------------------------------------------------------

// (file, 1-based line, rule) — compared as multisets so every marker fires
// exactly once: a missed marker and a double-fire both fail.
using Expectation = std::pair<std::pair<std::string, size_t>, std::string>;

void CollectExpectations(const SourceFile& f, std::vector<Expectation>* out) {
  for (size_t i = 0; i < f.raw.size(); ++i) {
    const std::string& line = f.raw[i];
    for (size_t p = line.find("expect["); p != std::string::npos;
         p = line.find("expect[", p + 1)) {
      size_t close = line.find(']', p + 7);
      if (close == std::string::npos) continue;
      out->push_back({{f.display, i + 1}, line.substr(p + 7, close - p - 7)});
    }
  }
}

bool CheckFixture(const std::string& label, const Project& project,
                  const std::string& which) {
  std::vector<Expectation> expected;
  for (const SourceFile& f : project.files) CollectExpectations(f, &expected);

  std::vector<Finding> findings;
  RunPasses(project, which, &findings);
  std::vector<Expectation> actual;
  for (const Finding& f : findings) actual.push_back({{f.file, f.line}, f.rule});

  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  if (expected == actual) return true;

  std::printf("FAIL %s\n", label.c_str());
  for (const Expectation& e : expected)
    if (std::count(actual.begin(), actual.end(), e) <
        std::count(expected.begin(), expected.end(), e))
      std::printf("  missing: %s:%zu [%s]\n", e.first.first.c_str(),
                  e.first.second, e.second.c_str());
  for (const Expectation& a : actual)
    if (std::count(expected.begin(), expected.end(), a) <
        std::count(actual.begin(), actual.end(), a))
      std::printf("  unexpected: %s:%zu [%s]\n", a.first.first.c_str(),
                  a.first.second, a.second.c_str());
  return false;
}

int RunSelfTest(const fs::path& fixtures_dir) {
  std::error_code ec;
  if (!fs::is_directory(fixtures_dir, ec)) {
    std::fprintf(stderr, "hivelint: fixtures dir not found: %s\n",
                 fixtures_dir.c_str());
    return 2;
  }

  size_t passed = 0, failed = 0;
  std::vector<fs::path> entries;
  for (const auto& entry : fs::directory_iterator(fixtures_dir))
    entries.push_back(entry.path());
  std::sort(entries.begin(), entries.end());

  for (const fs::path& entry : entries) {
    std::string name = entry.filename().string();
    if (fs::is_directory(entry)) {
      if (name.size() < 5 || name.substr(name.size() - 5) != "_tree") continue;
      // A *_tree fixture is a miniature project root: all four passes run,
      // so the project-wide rules (layering, drift) are exercised against a
      // real — tiny — tree with its own config.h / README / modules.
      Project project;
      if (!LoadProject(entry, {"."}, &project)) return 2;
      (CheckFixture(name, project, "all") ? passed : failed)++;
      continue;
    }
    if (!fs::is_regular_file(entry) || !HasSourceExtension(entry)) continue;
    bool ok = false;
    std::string text = ReadFileText(entry, &ok);
    if (!ok) {
      std::fprintf(stderr, "hivelint: cannot read %s\n", entry.c_str());
      return 2;
    }
    // Loose fixtures impersonate a src/ path (via the first-line directive)
    // and run the per-file passes.
    std::string rel = "src/fixture/" + name;
    std::vector<std::string> lines = SplitLines(text);
    const std::string kDirective = "// hivelint-fixture-path:";
    if (!lines.empty() && StartsWith(lines[0], kDirective)) {
      size_t s = SkipSpaces(lines[0], kDirective.size());
      rel = lines[0].substr(s);
      while (!rel.empty() && (rel.back() == ' ' || rel.back() == '\r'))
        rel.pop_back();
    }
    Project project;
    project.files.push_back(MakeSourceFile(rel, rel, text));
    (CheckFixture(name, project, "token+lockflow") ? passed : failed)++;
  }

  std::printf("hivelint self-test: %zu fixture(s) passed, %zu failed (%s)\n",
              passed, failed, TimingSummary("all").c_str());
  return failed == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string which = "all";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--self-test" && i + 1 < argc) {
      return RunSelfTest(argv[++i]);
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--pass" && i + 1 < argc) {
      which = argv[++i];
      bool known = which == "all";
      for (const PassEntry& pass : kPasses)
        if (which == pass.name) known = true;
      if (!known) {
        std::fprintf(stderr, "hivelint: unknown pass '%s'\n", which.c_str());
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: hivelint [--root <dir>] [--pass <name>|all] "
                   "<path>...\n       hivelint --self-test <fixtures-dir>\n");
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "hivelint: no inputs (try --root <repo> src)\n");
    return 2;
  }
  return RunLint(root, paths, which);
}

}  // namespace
}  // namespace hivelint

int main(int argc, char** argv) { return hivelint::Main(argc, argv); }
